//! Binary set algebra between bitmaps.
//!
//! The paper reduces graph-query evaluation to conjunctions of edge bitmaps
//! and logical query combinators to OR / AND NOT over result bitmaps
//! (Section 3.2), so these four operations carry the whole query engine.

use crate::bitmap::Bitmap;

impl Bitmap {
    /// Intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = self.containers[i].and(&other.containers[j]) {
                        out.push_container(self.keys[i], c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let ka = self.keys.get(i).copied();
            let kb = other.keys.get(j).copied();
            match (ka, kb) {
                (Some(a), Some(b)) if a == b => {
                    out.push_container(a, self.containers[i].or(&other.containers[j]));
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (Some(a), None) => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Difference: ids in `self` but not in `other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        for (i, &k) in self.keys.iter().enumerate() {
            match other.keys.binary_search(&k) {
                Ok(j) => {
                    if let Some(c) = self.containers[i].and_not(&other.containers[j]) {
                        out.push_container(k, c);
                    }
                }
                Err(_) => out.push_container(k, self.containers[i].clone()),
            }
        }
        out
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let ka = self.keys.get(i).copied();
            let kb = other.keys.get(j).copied();
            match (ka, kb) {
                (Some(a), Some(b)) if a == b => {
                    if let Some(c) = self.containers[i].xor(&other.containers[j]) {
                        out.push_container(a, c);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (Some(a), None) => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Delta-mask application: `(self − retired) ∪ added`.
    ///
    /// The MVCC structural phase merges a base match set with a write
    /// buffer in one step: `retired` masks out base records superseded by
    /// a delta version, `added` contributes the delta-resident matches
    /// (updated rows whose new content still matches, plus inserts). Fast
    /// paths skip the allocation when either side is empty.
    pub fn apply_delta(&self, retired: &Bitmap, added: &Bitmap) -> Bitmap {
        let survivors = if retired.is_empty() {
            self.clone()
        } else {
            self.and_not(retired)
        };
        if added.is_empty() {
            survivors
        } else {
            survivors.or(added)
        }
    }

    /// In-place intersection: `*self &= other`.
    ///
    /// Every chunk is intersected destructively via the container kernels
    /// ([`crate::container`]), so no result container is allocated; chunks
    /// whose keys are absent from `other`, or that drain to empty, are
    /// dropped through a write cursor without touching the others.
    pub fn and_inplace(&mut self, other: &Bitmap) {
        let mut write = 0usize;
        for read in 0..self.keys.len() {
            let k = self.keys[read];
            let Ok(j) = other.keys.binary_search(&k) else {
                continue;
            };
            let mine = &mut self.containers[read];
            mine.and_inplace(&other.containers[j]);
            if !mine.is_empty() {
                self.keys.swap(write, read);
                self.containers.swap(write, read);
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.containers.truncate(write);
    }

    /// In-place union: `*self |= other`.
    ///
    /// Chunks shared with `other` are unioned destructively; chunks only in
    /// `other` are cloned in at their sorted position. `self`'s untouched
    /// chunks are never reallocated.
    pub fn or_inplace(&mut self, other: &Bitmap) {
        for (j, &k) in other.keys.iter().enumerate() {
            match self.keys.binary_search(&k) {
                Ok(i) => self.containers[i].or_inplace(&other.containers[j]),
                Err(i) => {
                    self.keys.insert(i, k);
                    self.containers.insert(i, other.containers[j].clone());
                }
            }
        }
    }

    /// In-place difference: `*self \= other`.
    pub fn and_not_inplace(&mut self, other: &Bitmap) {
        let mut write = 0usize;
        for read in 0..self.keys.len() {
            let k = self.keys[read];
            let keep = match other.keys.binary_search(&k) {
                Ok(j) => {
                    let mine = &mut self.containers[read];
                    mine.and_not_inplace(&other.containers[j]);
                    !mine.is_empty()
                }
                Err(_) => true,
            };
            if keep {
                self.keys.swap(write, read);
                self.containers.swap(write, read);
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.containers.truncate(write);
    }

    /// Cheap selectivity estimate for the planner: the exact cardinality,
    /// read from the per-container counts in O(#containers) without touching
    /// any bit data. Conjunctions are evaluated cheapest-hint-first.
    #[inline]
    pub fn cardinality_hint(&self) -> u64 {
        self.len()
    }

    /// Conjunction of many bitmaps — the core of graph-query evaluation.
    ///
    /// Intersects cheapest-first (smallest cardinality) so the running result
    /// shrinks as fast as possible; returns the empty bitmap for no inputs.
    /// The two smallest operands are intersected into a single accumulator
    /// (the only allocation) and the rest applied with [`Bitmap::and_inplace`],
    /// short-circuiting the moment the accumulator drains.
    pub fn and_many<'a, I>(bitmaps: I) -> Bitmap
    where
        I: IntoIterator<Item = &'a Bitmap>,
    {
        let mut v: Vec<&Bitmap> = bitmaps.into_iter().collect();
        v.sort_by_key(|b| b.cardinality_hint());
        match v.first() {
            None => Bitmap::new(),
            Some(first) if first.is_empty() => Bitmap::new(),
            Some(first) if v.len() == 1 => (*first).clone(),
            Some(first) => {
                let mut acc = first.and(v[1]);
                for b in &v[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc.and_inplace(b);
                }
                acc
            }
        }
    }

    /// Disjunction of many bitmaps.
    pub fn or_many<'a, I>(bitmaps: I) -> Bitmap
    where
        I: IntoIterator<Item = &'a Bitmap>,
    {
        let mut acc = Bitmap::new();
        for b in bitmaps {
            acc = acc.or(b);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(vals: &[u32]) -> Bitmap {
        vals.iter().copied().collect()
    }

    #[test]
    fn and_or_andnot_xor_basic() {
        let a = bm(&[1, 2, 3, 100_000, 200_000]);
        let b = bm(&[2, 3, 4, 200_000]);
        assert_eq!(a.and(&b).to_vec(), vec![2, 3, 200_000]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 2, 3, 4, 100_000, 200_000]);
        assert_eq!(a.and_not(&b).to_vec(), vec![1, 100_000]);
        assert_eq!(a.xor(&b).to_vec(), vec![1, 4, 100_000]);
    }

    #[test]
    fn ops_with_empty() {
        let a = bm(&[5, 70_000]);
        let e = Bitmap::new();
        assert!(a.and(&e).is_empty());
        assert_eq!(a.or(&e), a);
        assert_eq!(a.and_not(&e), a);
        assert_eq!(a.xor(&e), a);
        assert_eq!(e.and_not(&a), e);
    }

    #[test]
    fn and_many_orders_by_cardinality() {
        let a: Bitmap = (0..10_000u32).collect();
        let b: Bitmap = (5_000..15_000u32).collect();
        let c = bm(&[5_001, 5_002, 20_000]);
        let r = Bitmap::and_many([&a, &b, &c]);
        assert_eq!(r.to_vec(), vec![5_001, 5_002]);
    }

    #[test]
    fn and_many_empty_input() {
        assert!(Bitmap::and_many(std::iter::empty::<&Bitmap>()).is_empty());
    }

    #[test]
    fn or_many_unions_all() {
        let parts: Vec<Bitmap> = (0..5u32).map(|i| bm(&[i, i + 100])).collect();
        let r = Bitmap::or_many(parts.iter());
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn inplace_ops_match_allocating() {
        let cases: Vec<(Bitmap, Bitmap)> = vec![
            ((0..100_000u32).collect(), (50_000..150_000u32).collect()),
            (bm(&[1, 70_000]), bm(&[2, 70_000])),
            (Bitmap::from_range(0..70_000), bm(&[5, 65_000, 69_999])),
            (bm(&[1]), Bitmap::new()),
            (Bitmap::new(), bm(&[1])),
            (
                (0..200_000u32).step_by(3).collect(),
                (0..200_000u32).step_by(2).collect(),
            ),
            // Lopsided sizes: exercises the galloping array paths.
            ((0..100_000u32).collect(), bm(&[17, 40_000, 99_999])),
            (bm(&[17, 40_000, 99_999]), (0..100_000u32).collect()),
        ];
        for (a, b) in cases {
            let mut anded = a.clone();
            anded.and_inplace(&b);
            assert_eq!(anded, a.and(&b));
            let mut orred = a.clone();
            orred.or_inplace(&b);
            assert_eq!(orred, a.or(&b));
            let mut diffed = a.clone();
            diffed.and_not_inplace(&b);
            assert_eq!(diffed, a.and_not(&b));
        }
    }

    #[test]
    fn inplace_ops_match_allocating_across_optimized_forms() {
        let mk = || -> Vec<Bitmap> {
            vec![
                Bitmap::from_range(0..70_000),
                (0..200_000u32).step_by(3).collect(),
                bm(&[9, 65_536, 131_072]),
            ]
        };
        for optimize_a in [false, true] {
            for optimize_b in [false, true] {
                for mut a in mk() {
                    for mut b in mk() {
                        if optimize_a {
                            a.optimize();
                        }
                        if optimize_b {
                            b.optimize();
                        }
                        let mut anded = a.clone();
                        anded.and_inplace(&b);
                        assert_eq!(anded, a.and(&b));
                        let mut orred = a.clone();
                        orred.or_inplace(&b);
                        assert_eq!(orred, a.or(&b));
                        let mut diffed = a.clone();
                        diffed.and_not_inplace(&b);
                        assert_eq!(diffed, a.and_not(&b));
                    }
                }
            }
        }
    }

    #[test]
    fn apply_delta_is_andnot_then_or() {
        let base: Bitmap = (0..1000u32).step_by(3).collect();
        let retired: Bitmap = [3u32, 9, 600].into_iter().collect();
        let added: Bitmap = [9u32, 1500, 70_000].into_iter().collect();
        let got = base.apply_delta(&retired, &added);
        assert_eq!(got, base.and_not(&retired).or(&added));
        assert!(!got.contains(3));
        assert!(got.contains(9), "re-added after retirement");
        assert!(got.contains(70_000));
        // Empty-side fast paths are still exact.
        assert_eq!(base.apply_delta(&Bitmap::new(), &Bitmap::new()), base);
        assert_eq!(base.apply_delta(&base, &Bitmap::new()), Bitmap::new());
    }

    #[test]
    fn cardinality_hint_is_exact() {
        let mut b: Bitmap = (0..50_000u32).step_by(2).collect();
        assert_eq!(b.cardinality_hint(), b.len());
        b.optimize();
        assert_eq!(b.cardinality_hint(), 25_000);
    }

    #[test]
    fn ops_across_dense_and_run_forms() {
        let mut a = Bitmap::from_range(0..100_000);
        a.optimize();
        let b: Bitmap = (0..200_000u32).step_by(3).collect();
        let r = a.and(&b);
        assert_eq!(r.len(), 100_000_u64.div_ceil(3));
        let u = a.or(&b);
        assert_eq!(u.len(), 100_000 + (200_000u64 - 100_002).div_ceil(3));
    }
}
