//! Binary (de)serialization of bitmaps.
//!
//! The column store persists bitmap columns to disk in this format. Layout
//! (all little-endian):
//!
//! ```text
//! magic  u32  = 0x4742_4D31 ("GBM1")
//! nkeys  u32
//! per chunk: key u16, tag u8, payload
//!   tag 0 array: len u32, len × u16
//!   tag 1 words: 1024 × u64
//!   tag 2 runs:  len u32, len × (start u16, len u16)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitmap::Bitmap;
use crate::container::{Container, Run, Words, WORDS};

const MAGIC: u32 = 0x4742_4D31;

/// Error returned when decoding malformed bitmap bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The leading magic number did not match.
    BadMagic(u32),
    /// An unknown container tag was encountered.
    BadTag(u8),
    /// Chunk keys were not strictly increasing or a container was empty.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitmap bytes truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad bitmap magic 0x{m:08x}"),
            DecodeError::BadTag(t) => write!(f, "unknown container tag {t}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt bitmap: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Bitmap {
    /// Serializes into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(u32::try_from(self.keys.len()).expect("chunk count fits u32"));
        for (i, &key) in self.keys.iter().enumerate() {
            buf.put_u16_le(key);
            match &self.containers[i] {
                Container::Array(a) => {
                    buf.put_u8(0);
                    buf.put_u32_le(a.len() as u32);
                    for &v in a {
                        buf.put_u16_le(v);
                    }
                }
                Container::Words(w) => {
                    buf.put_u8(1);
                    for &word in &w.bits {
                        buf.put_u64_le(word);
                    }
                }
                Container::Runs(rs) => {
                    buf.put_u8(2);
                    buf.put_u32_le(rs.len() as u32);
                    for r in rs {
                        buf.put_u16_le(r.start);
                        buf.put_u16_le(r.len);
                    }
                }
            }
        }
    }

    /// Serializes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.size_in_bytes() + self.keys.len() * 8);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes a bitmap previously produced by [`Bitmap::encode`], consuming
    /// its bytes from the front of `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Bitmap, DecodeError> {
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let nkeys = buf.get_u32_le() as usize;
        let mut out = Bitmap::new();
        let mut prev_key: Option<u16> = None;
        for _ in 0..nkeys {
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let key = buf.get_u16_le();
            if prev_key.is_some_and(|p| p >= key) {
                return Err(DecodeError::Corrupt("keys not strictly increasing"));
            }
            prev_key = Some(key);
            let tag = buf.get_u8();
            let container = match tag {
                0 => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len * 2 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut a = Vec::with_capacity(len);
                    for _ in 0..len {
                        a.push(buf.get_u16_le());
                    }
                    if a.is_empty() || a.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(DecodeError::Corrupt("array container not sorted/non-empty"));
                    }
                    Container::Array(a)
                }
                1 => {
                    if buf.remaining() < WORDS * 8 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut w = Words::empty();
                    for word in w.bits.iter_mut() {
                        *word = buf.get_u64_le();
                    }
                    w.recount();
                    if w.card == 0 {
                        return Err(DecodeError::Corrupt("empty words container"));
                    }
                    Container::Words(w)
                }
                2 => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len * 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut rs = Vec::with_capacity(len);
                    for _ in 0..len {
                        let start = buf.get_u16_le();
                        let rlen = buf.get_u16_le();
                        rs.push(Run { start, len: rlen });
                    }
                    let sorted = rs
                        .windows(2)
                        .all(|w| u32::from(w[0].end()) + 1 < u32::from(w[1].start))
                        || rs.len() < 2;
                    if rs.is_empty() || !sorted {
                        return Err(DecodeError::Corrupt("runs overlapping or empty"));
                    }
                    Container::Runs(rs)
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            out.push_container(key, container);
        }
        Ok(out)
    }

    /// Size of the encoded form in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + self
            .containers
            .iter()
            .map(|c| {
                3 + match c {
                    Container::Array(a) => 4 + a.len() * 2,
                    Container::Words(_) => WORDS * 8,
                    Container::Runs(rs) => 4 + rs.len() * 4,
                }
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_forms() {
        let mut b = Bitmap::from_range(100..70_000);
        b.extend((200_000..400_000u32).step_by(17));
        b.optimize();
        let bytes = b.encode();
        assert_eq!(bytes.len(), b.encoded_len());
        let mut cursor = bytes.clone();
        let back = Bitmap::decode(&mut cursor).unwrap();
        assert_eq!(b, back);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn round_trip_empty() {
        let b = Bitmap::new();
        let mut bytes = b.encode();
        assert_eq!(Bitmap::decode(&mut bytes).unwrap(), b);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(0);
        assert!(matches!(
            Bitmap::decode(&mut buf.freeze()),
            Err(DecodeError::BadMagic(0xdead_beef))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let b: Bitmap = (0..100u32).collect();
        let bytes = b.encode();
        for cut in [0, 4, 9, bytes.len() - 1] {
            let mut slice = bytes.slice(..cut);
            assert!(
                Bitmap::decode(&mut slice).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(1);
        buf.put_u16_le(0);
        buf.put_u8(9);
        assert!(matches!(
            Bitmap::decode(&mut buf.freeze()),
            Err(DecodeError::BadTag(9))
        ));
    }
}
