//! Binary (de)serialization of bitmaps.
//!
//! The column store persists bitmap columns to disk in this format. Layout
//! (all little-endian):
//!
//! ```text
//! magic  u32  = 0x4742_4D31 ("GBM1")
//! nkeys  u32
//! per chunk: key u16, tag u8, payload
//!   tag 0 array: len u32, len × u16
//!   tag 1 words: 1024 × u64
//!   tag 2 runs:  len u32, len × (start u16, len u16)
//!   tag 3 ef:    plen u32, Elias-Fano bytes of the sorted low-bit set
//!   tag 4 γruns: plen u32, gamma stream: nruns, start₀+1, len₀+1,
//!                then (gap−1, len+1) per further run
//!   tag 5 FoR:   plen u32, count u16, base u16, width u8,
//!                count × width-bit packed deltas from base
//! ```
//!
//! Tags 0–2 are the raw (format v2) container payloads; tags 3–5 are the
//! compressed forms introduced by on-disk format v3. [`Bitmap::encode`]
//! emits only raw tags (the v2 writer and the WAL use it);
//! [`Bitmap::encode_v3`] picks, per container, whichever candidate form is
//! smallest. [`Bitmap::decode`] accepts all six tags, so a v3-capable
//! reader loads v2 files unchanged. Decoding materializes standard
//! containers — compression is a storage-layer concern, and the column
//! cache ensures each fetched block is decoded at most once.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitmap::Bitmap;
use crate::container::{words_from_array, Container, Run, Words, ARRAY_MAX, WORDS};
use crate::intcodec::{gamma_bit_len, BitReader, BitWriter, EliasFano, PackedInts};

const MAGIC: u32 = 0x4742_4D31;

/// Most runs a 64Ki chunk can hold (every run at least 1 wide, gaps at
/// least 2): used to bound allocation when decoding gamma-coded runs.
const MAX_RUNS: usize = (1usize << 16).div_ceil(3);

/// Stack-buffer size for block decoding of packed integers.
const UNPACK_BLOCK: usize = 64;

/// Error returned when decoding malformed bitmap bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The leading magic number did not match.
    BadMagic(u32),
    /// An unknown container tag was encountered.
    BadTag(u8),
    /// Chunk keys were not strictly increasing or a container was empty.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitmap bytes truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad bitmap magic 0x{m:08x}"),
            DecodeError::BadTag(t) => write!(f, "unknown container tag {t}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt bitmap: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reads a length-framed v3 container payload (tags 3–5).
fn framed_payload(buf: &mut impl Buf) -> Result<Bytes, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let plen = buf.get_u32_le() as usize;
    if buf.remaining() < plen {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.copy_to_bytes(plen))
}

/// Writes a container in its raw (v2) form: tag 0/1/2 plus body.
fn put_container_raw(c: &Container, buf: &mut BytesMut) {
    match c {
        Container::Array(a) => {
            buf.put_u8(0);
            buf.put_u32_le(a.len() as u32);
            for &v in a {
                buf.put_u16_le(v);
            }
        }
        Container::Words(w) => {
            buf.put_u8(1);
            for &word in &w.bits {
                buf.put_u64_le(word);
            }
        }
        Container::Runs(rs) => {
            buf.put_u8(2);
            buf.put_u32_le(rs.len() as u32);
            for r in rs {
                buf.put_u16_le(r.start);
                buf.put_u16_le(r.len);
            }
        }
    }
}

/// Raw (v2) body length of a container, excluding the tag byte.
fn raw_body_len(c: &Container) -> usize {
    match c {
        Container::Array(a) => 4 + a.len() * 2,
        Container::Words(_) => WORDS * 8,
        Container::Runs(rs) => 4 + rs.len() * 4,
    }
}

/// Gamma-stream bit length of a runs container (tag 4 payload).
fn gamma_runs_bit_len(rs: &[Run]) -> usize {
    let mut bits = gamma_bit_len(rs.len() as u64)
        + gamma_bit_len(u64::from(rs[0].start) + 1)
        + gamma_bit_len(u64::from(rs[0].len) + 1);
    for pair in rs.windows(2) {
        let gap = u64::from(pair[1].start) - u64::from(pair[0].end());
        bits += gamma_bit_len(gap - 1) + gamma_bit_len(u64::from(pair[1].len) + 1);
    }
    bits
}

/// Picks the v3 tag for a container and the body length it will produce
/// (everything after the tag byte). Raw wins ties so decoding stays cheap
/// when compression buys nothing.
fn v3_choice(c: &Container) -> (u8, usize) {
    match c {
        Container::Array(a) => {
            let n = a.len();
            let last = u64::from(*a.last().expect("array containers are non-empty"));
            let base = u64::from(a[0]);
            let raw = raw_body_len(c);
            let ef = 4 + EliasFano::encoded_byte_len(n, last);
            let for_w = PackedInts::width_for(last - base);
            let fr = 4 + 5 + PackedInts::byte_len(n, for_w);
            let best = raw.min(ef).min(fr);
            if best == raw {
                (0, raw)
            } else if best == fr {
                (5, fr)
            } else {
                (3, ef)
            }
        }
        Container::Words(w) => {
            let card = w.card as usize;
            let last = u64::from(c.max().expect("words containers are non-empty"));
            let ef = 4 + EliasFano::encoded_byte_len(card, last);
            if ef < WORDS * 8 {
                (3, ef)
            } else {
                (1, WORDS * 8)
            }
        }
        Container::Runs(rs) => {
            let raw = raw_body_len(c);
            let gamma = 4 + gamma_runs_bit_len(rs).div_ceil(8);
            if gamma < raw {
                (4, gamma)
            } else {
                (2, raw)
            }
        }
    }
}

/// Writes a container in its chosen v3 form.
fn put_container_v3(c: &Container, buf: &mut BytesMut) {
    let (tag, _) = v3_choice(c);
    match tag {
        0..=2 => put_container_raw(c, buf),
        3 => {
            let vals: Vec<u64> = c.to_array().iter().map(|&v| u64::from(v)).collect();
            let payload = EliasFano::encode(&vals).to_bytes();
            buf.put_u8(3);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(&payload);
        }
        4 => {
            let Container::Runs(rs) = c else {
                unreachable!("tag 4 only chosen for runs")
            };
            let mut w = BitWriter::new();
            w.write_gamma(rs.len() as u64);
            w.write_gamma(u64::from(rs[0].start) + 1);
            w.write_gamma(u64::from(rs[0].len) + 1);
            for pair in rs.windows(2) {
                let gap = u64::from(pair[1].start) - u64::from(pair[0].end());
                w.write_gamma(gap - 1);
                w.write_gamma(u64::from(pair[1].len) + 1);
            }
            let payload = w.into_bytes();
            buf.put_u8(4);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(&payload);
        }
        5 => {
            let Container::Array(a) = c else {
                unreachable!("tag 5 only chosen for arrays")
            };
            let base = a[0];
            let width = PackedInts::width_for(u64::from(*a.last().unwrap() - base));
            let deltas: Vec<u64> = a.iter().map(|&v| u64::from(v - base)).collect();
            let packed = PackedInts::pack(&deltas, width);
            buf.put_u8(5);
            buf.put_u32_le((5 + packed.as_bytes().len()) as u32);
            buf.put_u16_le(a.len() as u16);
            buf.put_u16_le(base);
            buf.put_u8(width as u8);
            buf.put_slice(packed.as_bytes());
        }
        _ => unreachable!(),
    }
}

impl Bitmap {
    /// Serializes into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(u32::try_from(self.keys.len()).expect("chunk count fits u32"));
        for (i, &key) in self.keys.iter().enumerate() {
            buf.put_u16_le(key);
            put_container_raw(&self.containers[i], buf);
        }
    }

    /// Serializes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.size_in_bytes() + self.keys.len() * 8);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serializes with the v3 compressed container forms into `buf`: each
    /// container is written with whichever of its candidate encodings
    /// (raw, Elias-Fano, gamma runs, frame-of-reference) is smallest.
    /// The result decodes with the same [`Bitmap::decode`] as raw bytes.
    pub fn encode_v3_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(u32::try_from(self.keys.len()).expect("chunk count fits u32"));
        for (i, &key) in self.keys.iter().enumerate() {
            buf.put_u16_le(key);
            put_container_v3(&self.containers[i], buf);
        }
    }

    /// Serializes with the v3 compressed container forms into a fresh
    /// buffer.
    pub fn encode_v3(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len_v3());
        self.encode_v3_into(&mut buf);
        buf.freeze()
    }

    /// Size of the v3 encoded form in bytes.
    pub fn encoded_len_v3(&self) -> usize {
        8 + self
            .containers
            .iter()
            .map(|c| 3 + v3_choice(c).1)
            .sum::<usize>()
    }

    /// Decodes a bitmap previously produced by [`Bitmap::encode`], consuming
    /// its bytes from the front of `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Bitmap, DecodeError> {
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let nkeys = buf.get_u32_le() as usize;
        let mut out = Bitmap::new();
        let mut prev_key: Option<u16> = None;
        for _ in 0..nkeys {
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let key = buf.get_u16_le();
            if prev_key.is_some_and(|p| p >= key) {
                return Err(DecodeError::Corrupt("keys not strictly increasing"));
            }
            prev_key = Some(key);
            let tag = buf.get_u8();
            let container = match tag {
                0 => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len * 2 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut a = Vec::with_capacity(len);
                    for _ in 0..len {
                        a.push(buf.get_u16_le());
                    }
                    if a.is_empty() || a.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(DecodeError::Corrupt("array container not sorted/non-empty"));
                    }
                    Container::Array(a)
                }
                1 => {
                    if buf.remaining() < WORDS * 8 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut w = Words::empty();
                    for word in w.bits.iter_mut() {
                        *word = buf.get_u64_le();
                    }
                    w.recount();
                    if w.card == 0 {
                        return Err(DecodeError::Corrupt("empty words container"));
                    }
                    Container::Words(w)
                }
                2 => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len * 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let mut rs = Vec::with_capacity(len);
                    for _ in 0..len {
                        let start = buf.get_u16_le();
                        let rlen = buf.get_u16_le();
                        rs.push(Run { start, len: rlen });
                    }
                    let sorted = rs
                        .windows(2)
                        .all(|w| u32::from(w[0].end()) + 1 < u32::from(w[1].start))
                        || rs.len() < 2;
                    if rs.is_empty() || !sorted {
                        return Err(DecodeError::Corrupt("runs overlapping or empty"));
                    }
                    Container::Runs(rs)
                }
                3 => {
                    let payload = framed_payload(buf)?;
                    let Some(ef) = EliasFano::from_bytes(&payload) else {
                        return Err(DecodeError::Corrupt("malformed elias-fano payload"));
                    };
                    let card = ef.len();
                    if card == 0 || card > 1 << 16 {
                        return Err(DecodeError::Corrupt("elias-fano cardinality out of range"));
                    }
                    let mut vals: Vec<u16> = Vec::with_capacity(card);
                    let mut cur = ef.cursor();
                    let mut prev: Option<u16> = None;
                    while let Some(v) = cur.next() {
                        if v > 0xffff {
                            return Err(DecodeError::Corrupt(
                                "elias-fano value out of chunk range",
                            ));
                        }
                        let v = v as u16;
                        if prev.is_some_and(|p| p >= v) {
                            return Err(DecodeError::Corrupt(
                                "elias-fano values not strictly increasing",
                            ));
                        }
                        prev = Some(v);
                        vals.push(v);
                    }
                    if vals.len() != card {
                        return Err(DecodeError::Corrupt("elias-fano high bits exhausted early"));
                    }
                    if card <= ARRAY_MAX {
                        Container::Array(vals)
                    } else {
                        Container::Words(words_from_array(&vals))
                    }
                }
                4 => {
                    let payload = framed_payload(buf)?;
                    let mut r = BitReader::new(&payload);
                    let truncated = DecodeError::Corrupt("gamma runs truncated");
                    let nruns = r.read_gamma().ok_or(truncated.clone())? as usize;
                    if nruns > MAX_RUNS {
                        return Err(DecodeError::Corrupt("gamma run count out of range"));
                    }
                    let mut rs: Vec<Run> = Vec::with_capacity(nruns);
                    let start = r.read_gamma().ok_or(truncated.clone())? - 1;
                    let len = r.read_gamma().ok_or(truncated.clone())? - 1;
                    if start + len > 0xffff {
                        return Err(DecodeError::Corrupt("gamma run out of chunk range"));
                    }
                    rs.push(Run {
                        start: start as u16,
                        len: len as u16,
                    });
                    for _ in 1..nruns {
                        let gap = r.read_gamma().ok_or(truncated.clone())? + 1;
                        let len = r.read_gamma().ok_or(truncated.clone())? - 1;
                        let prev_end = u64::from(rs.last().unwrap().end());
                        let start = prev_end + gap;
                        if start + len > 0xffff {
                            return Err(DecodeError::Corrupt("gamma run out of chunk range"));
                        }
                        rs.push(Run {
                            start: start as u16,
                            len: len as u16,
                        });
                    }
                    Container::Runs(rs)
                }
                5 => {
                    let payload = framed_payload(buf)?;
                    if payload.len() < 5 {
                        return Err(DecodeError::Corrupt("frame-of-reference header truncated"));
                    }
                    let count = u16::from_le_bytes([payload[0], payload[1]]) as usize;
                    let base = u16::from_le_bytes([payload[2], payload[3]]);
                    let width = u32::from(payload[4]);
                    if count == 0 || count > ARRAY_MAX || width > 16 {
                        return Err(DecodeError::Corrupt(
                            "frame-of-reference shape out of range",
                        ));
                    }
                    if payload.len() != 5 + PackedInts::byte_len(count, width) {
                        return Err(DecodeError::Corrupt("frame-of-reference payload length"));
                    }
                    let Some(packed) = PackedInts::from_bytes(&payload[5..], width, count) else {
                        return Err(DecodeError::Corrupt("frame-of-reference payload truncated"));
                    };
                    // Block-decode the deltas through the dispatched
                    // unpack kernel instead of per-element bit reads.
                    let mut vals: Vec<u16> = Vec::with_capacity(count);
                    let mut deltas = [0u64; UNPACK_BLOCK];
                    let mut prev: Option<u16> = None;
                    let mut start = 0usize;
                    while start < count {
                        let got = packed.unpack_into(start, &mut deltas);
                        for &d in &deltas[..got] {
                            let v = u64::from(base) + d;
                            if v > 0xffff {
                                return Err(DecodeError::Corrupt(
                                    "frame-of-reference value out of chunk range",
                                ));
                            }
                            let v = v as u16;
                            if prev.is_some_and(|p| p >= v) {
                                return Err(DecodeError::Corrupt(
                                    "frame-of-reference values not strictly increasing",
                                ));
                            }
                            prev = Some(v);
                            vals.push(v);
                        }
                        start += got;
                    }
                    Container::Array(vals)
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            out.push_container(key, container);
        }
        Ok(out)
    }

    /// Size of the encoded form in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + self
            .containers
            .iter()
            .map(|c| {
                3 + match c {
                    Container::Array(a) => 4 + a.len() * 2,
                    Container::Words(_) => WORDS * 8,
                    Container::Runs(rs) => 4 + rs.len() * 4,
                }
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_forms() {
        let mut b = Bitmap::from_range(100..70_000);
        b.extend((200_000..400_000u32).step_by(17));
        b.optimize();
        let bytes = b.encode();
        assert_eq!(bytes.len(), b.encoded_len());
        let mut cursor = bytes.clone();
        let back = Bitmap::decode(&mut cursor).unwrap();
        assert_eq!(b, back);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn round_trip_empty() {
        let b = Bitmap::new();
        let mut bytes = b.encode();
        assert_eq!(Bitmap::decode(&mut bytes).unwrap(), b);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(0);
        assert!(matches!(
            Bitmap::decode(&mut buf.freeze()),
            Err(DecodeError::BadMagic(0xdead_beef))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let b: Bitmap = (0..100u32).collect();
        let bytes = b.encode();
        for cut in [0, 4, 9, bytes.len() - 1] {
            let mut slice = bytes.slice(..cut);
            assert!(
                Bitmap::decode(&mut slice).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(1);
        buf.put_u16_le(0);
        buf.put_u8(9);
        assert!(matches!(
            Bitmap::decode(&mut buf.freeze()),
            Err(DecodeError::BadTag(9))
        ));
    }

    #[test]
    fn v3_round_trips_every_container_form() {
        // Clustered runs, a dense words chunk, sparse and mid-density
        // arrays — exercises every v3 tag choice.
        let mut b = Bitmap::from_range(100..70_000);
        b.extend((200_000..400_000u32).step_by(17));
        b.extend((500_000..510_000u32).step_by(2)); // 5000-card words chunk
        b.extend([1_000_000u32, 1_000_003]); // tiny array stays raw
        b.optimize();
        let bytes = b.encode_v3();
        assert_eq!(bytes.len(), b.encoded_len_v3());
        let mut cursor = bytes.clone();
        let back = Bitmap::decode(&mut cursor).unwrap();
        assert_eq!(b, back);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn v3_is_never_larger_than_raw() {
        let mut b = Bitmap::from_range(0..100_000);
        b.extend((150_000..300_000u32).step_by(3));
        b.optimize();
        assert!(b.encoded_len_v3() <= b.encoded_len());
    }

    #[test]
    fn v3_decode_rejects_truncation_everywhere() {
        let mut b: Bitmap = (0..30_000u32).step_by(7).collect();
        b.optimize();
        let bytes = b.encode_v3();
        for cut in 0..bytes.len() {
            let mut slice = bytes.slice(..cut);
            assert!(
                Bitmap::decode(&mut slice).is_err(),
                "cut at {cut} decoded cleanly"
            );
        }
    }

    #[test]
    fn v3_full_chunk_round_trips() {
        let b = Bitmap::from_range(0..65_536);
        let mut opt = b.clone();
        opt.optimize();
        for bm in [&b, &opt] {
            let mut bytes = bm.encode_v3();
            assert_eq!(&Bitmap::decode(&mut bytes).unwrap(), bm);
        }
    }
}
