//! Uncompressed bitmap used as the ablation baseline.
//!
//! Stores one bit per possible record id in a flat `Vec<u64>`. This is the
//! "naive uncompressed representation" the paper mentions in §5.1 when
//! estimating the memory footprint of a bitmap column; the benches compare it
//! against the compressed [`crate::Bitmap`].

use crate::RecordId;

/// A fixed-capacity uncompressed bitmap over ids `0..capacity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBitmap {
    words: Vec<u64>,
    capacity: u32,
}

impl DenseBitmap {
    /// Creates an empty bitmap able to hold ids `0..capacity`.
    pub fn new(capacity: u32) -> Self {
        DenseBitmap {
            words: vec![0; (capacity as usize).div_ceil(64)],
            capacity,
        }
    }

    /// Capacity this bitmap was created with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Sets bit `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: RecordId) {
        assert!(
            v < self.capacity,
            "id {v} out of capacity {}",
            self.capacity
        );
        self.words[(v / 64) as usize] |= 1 << (v % 64);
    }

    /// True iff bit `v` is set (false for out-of-capacity ids).
    #[inline]
    pub fn contains(&self, v: RecordId) -> bool {
        v < self.capacity && self.words[(v / 64) as usize] & (1 << (v % 64)) != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection. Capacities must match.
    pub fn and_assign(&mut self, other: &DenseBitmap) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Capacities must match.
    pub fn or_assign(&mut self, other: &DenseBitmap) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Heap bytes used — always `capacity / 8` regardless of content.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let tz = word.trailing_zeros();
                word &= word - 1;
                Some((wi as u32) * 64 + tz)
            })
        })
    }

    /// Converts to the compressed representation.
    pub fn to_compressed(&self) -> crate::Bitmap {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut b = DenseBitmap::new(1000);
        for v in [0u32, 63, 64, 999] {
            b.insert(v);
        }
        assert!(b.contains(0));
        assert!(!b.contains(1));
        assert!(!b.contains(5000));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 63, 64, 999]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn and_or_assign() {
        let mut a = DenseBitmap::new(256);
        let mut b = DenseBitmap::new(256);
        for v in 0..100 {
            a.insert(v);
        }
        for v in 50..150 {
            b.insert(v);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.len(), 50);
        a.or_assign(&b);
        assert_eq!(a.len(), 150);
    }

    #[test]
    fn size_is_content_independent() {
        let empty = DenseBitmap::new(1 << 20);
        let mut full = DenseBitmap::new(1 << 20);
        for v in 0..1000 {
            full.insert(v * 7);
        }
        assert_eq!(empty.size_in_bytes(), full.size_in_bytes());
    }

    #[test]
    fn compressed_round_trip() {
        let mut d = DenseBitmap::new(100_000);
        for v in (0..100_000).step_by(13) {
            d.insert(v);
        }
        let c = d.to_compressed();
        assert_eq!(c.len(), d.len());
        assert!(c.iter().all(|v| d.contains(v)));
    }
}
