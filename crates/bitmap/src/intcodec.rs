//! Integer-compression primitives for the v3 on-disk format.
//!
//! Everything here is a building block for [`crate::codec`] (compressed
//! container payloads) and the column store's measure codec:
//!
//! * [`BitWriter`] / [`BitReader`] — LSB-first bit streams over byte
//!   buffers, including Elias-gamma codes for the run-length payloads.
//! * [`PackedInts`] — fixed-width bit-packed integers with O(1) random
//!   access; the payload of frame-of-reference arrays and dictionary
//!   indices.
//! * [`EliasFano`] — the quasi-succinct encoding of monotone sequences
//!   (Elias 1974, Fano 1971; see the partitioned variant in Ottaviano &
//!   Venturini). Supports streaming iteration, `next_geq` skipping, and
//!   [`gallop_intersect`] directly over two encoded sequences.
//!
//! Every decoder is bounds-checked and returns `None` on malformed input:
//! these run on bytes read off disk, sometimes with checksum verification
//! disabled (`Verify::TrustDisk`), so corrupt input must never panic or
//! index out of range.

/// `width`-bit mask (`width <= 64`).
fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Reads `width <= 64` bits at bit offset `pos`, LSB-first. Bits past the
/// end of `bytes` read as zero — callers bound `pos + width` themselves
/// when the distinction matters.
fn read_bits(bytes: &[u8], pos: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let first = pos / 8;
    let bit = pos % 8;
    let nbytes = (bit + width as usize).div_ceil(8);
    let mut acc: u128 = 0;
    for i in 0..nbytes {
        acc |= u128::from(bytes.get(first + i).copied().unwrap_or(0)) << (8 * i);
    }
    ((acc >> bit) as u64) & mask(width)
}

fn get_bit(bytes: &[u8], pos: usize) -> bool {
    bytes
        .get(pos / 8)
        .is_some_and(|b| b & (1 << (pos % 8)) != 0)
}

// ---------------------------------------------------------------------------
// Bit streams.

/// Append-only LSB-first bit stream.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    len: usize,
}

impl BitWriter {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, least-significant first.
    ///
    /// # Panics
    ///
    /// Debug-panics when `width > 64` or `value` has bits above `width`.
    pub fn write(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64, "width {width} > 64");
        debug_assert!(value & !mask(width) == 0, "value wider than {width} bits");
        let partial = self.len % 8;
        let mut acc = u128::from(value) << partial;
        if partial != 0 {
            acc |= u128::from(self.bytes.pop().expect("partial byte exists"));
        }
        let nbytes = (partial + width as usize).div_ceil(8);
        for i in 0..nbytes {
            self.bytes.push((acc >> (8 * i)) as u8);
        }
        self.len += width as usize;
    }

    /// Appends `value >= 1` in Elias-gamma: the unary bit length, then the
    /// value's low bits.
    ///
    /// # Panics
    ///
    /// Panics when `value == 0` (gamma has no code for zero).
    pub fn write_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma codes start at 1");
        let n = 64 - value.leading_zeros(); // bit length, >= 1
        self.write(1u64 << (n - 1), n); // n-1 zeros, then the marker one
        self.write(value & mask(n - 1), n - 1); // low bits
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.len
    }

    /// Finishes the stream; the final byte is zero-padded.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bits of the Elias-gamma code of `value >= 1`.
pub fn gamma_bit_len(value: u64) -> usize {
    debug_assert!(value >= 1);
    let n = (64 - value.leading_zeros()) as usize;
    2 * n - 1
}

/// LSB-first bit stream reader. Every read is bounds-checked against the
/// underlying byte length.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width <= 64` bits, or `None` past the end of the buffer.
    pub fn read(&mut self, width: u32) -> Option<u64> {
        if width > 64 {
            return None;
        }
        let end = self.pos.checked_add(width as usize)?;
        if end > self.bytes.len() * 8 {
            return None;
        }
        let v = read_bits(self.bytes, self.pos, width);
        self.pos = end;
        Some(v)
    }

    /// Reads one Elias-gamma code. `None` on buffer end or a unary prefix
    /// longer than any encodable value (corrupt input).
    pub fn read_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        loop {
            match self.read(1)? {
                1 => break,
                _ => {
                    zeros += 1;
                    if zeros >= 64 {
                        return None;
                    }
                }
            }
        }
        let low = self.read(zeros)?;
        Some((1u64 << zeros) | low)
    }

    /// Bits left in the buffer.
    pub fn bits_remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

// ---------------------------------------------------------------------------
// Fixed-width packing (the frame-of-reference payload).

/// `len` integers of `width` bits each, packed back to back — O(1) random
/// access, `ceil(len·width/8)` bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedInts {
    width: u32,
    len: usize,
    bits: Vec<u8>,
}

impl PackedInts {
    /// The narrowest width that can hold `max` (0 when `max == 0`).
    pub fn width_for(max: u64) -> u32 {
        64 - max.leading_zeros()
    }

    /// Packed byte length of `len` values at `width` bits.
    pub fn byte_len(len: usize, width: u32) -> usize {
        (len * width as usize).div_ceil(8)
    }

    /// Packs `values`, all of which must fit in `width` bits.
    pub fn pack(values: &[u64], width: u32) -> PackedInts {
        let mut w = BitWriter::new();
        for &v in values {
            w.write(v, width);
        }
        PackedInts {
            width,
            len: values.len(),
            bits: w.into_bytes(),
        }
    }

    /// Reconstructs from packed bytes; `None` when `bytes` is shorter than
    /// `len` values of `width` bits need, or `width > 64`.
    pub fn from_bytes(bytes: &[u8], width: u32, len: usize) -> Option<PackedInts> {
        if width > 64 {
            return None;
        }
        let need = Self::byte_len(len, width);
        let bits = bytes.get(..need)?.to_vec();
        Some(PackedInts { width, len, bits })
    }

    /// The `i`-th packed value.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "packed index {i} out of {}", self.len);
        read_bits(&self.bits, i * self.width as usize, self.width)
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The packed payload (exactly [`PackedInts::byte_len`] bytes).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Heap bytes held.
    pub fn size_in_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Iterates the packed values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Bulk-decodes up to `out.len()` consecutive values starting at index
    /// `start` into `out`, returning how many were written (`0` when
    /// `start >= len()`). This is the vectorized block path behind
    /// frame-of-reference and dictionary-index decoding — equivalent to
    /// `out[k] = self.get(start + k)` but decoded through
    /// [`crate::kernels::unpack_bits`], which dispatches to the AVX2
    /// gather/shift unpacker when available.
    pub fn unpack_into(&self, start: usize, out: &mut [u64]) -> usize {
        let n = out.len().min(self.len.saturating_sub(start));
        crate::kernels::unpack_bits(
            &self.bits,
            start * self.width as usize,
            self.width,
            &mut out[..n],
        );
        n
    }
}

// ---------------------------------------------------------------------------
// Elias-Fano.

/// An Elias-Fano-coded non-decreasing sequence of `u64`s.
///
/// Each value is split at `low_width` bits: the low halves are stored
/// fixed-width in [`PackedInts`], the high halves unary-coded in a bit
/// vector (`n` ones, one per element, separated by a zero per distinct
/// high bucket). Total size approaches the information-theoretic
/// `n·(2 + log2(u/n))` bits for `n` values below `u`.
#[derive(Clone, Debug, PartialEq)]
pub struct EliasFano {
    n: usize,
    last: u64,
    low_width: u32,
    lows: PackedInts,
    high: Vec<u8>,
}

/// Low-half width for `n` values whose maximum is `last`.
fn ef_low_width(n: usize, last: u64) -> u32 {
    if n == 0 {
        return 0;
    }
    let per = last.saturating_add(1) / n as u64;
    if per <= 1 {
        0
    } else {
        63 - per.leading_zeros()
    }
}

impl EliasFano {
    /// Encodes a non-decreasing sequence.
    ///
    /// # Panics
    ///
    /// Panics when `values` decreases anywhere.
    pub fn encode(values: &[u64]) -> EliasFano {
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "elias-fano input must be non-decreasing"
        );
        let n = values.len();
        let last = values.last().copied().unwrap_or(0);
        let l = ef_low_width(n, last);
        let lows: Vec<u64> = values.iter().map(|&v| v & mask(l)).collect();
        let high_bits = if n == 0 { 0 } else { (last >> l) as usize + n };
        let mut high = vec![0u8; high_bits.div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            let pos = (v >> l) as usize + i;
            high[pos / 8] |= 1 << (pos % 8);
        }
        EliasFano {
            n,
            last,
            low_width: l,
            lows: PackedInts::pack(&lows, l),
            high,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Serialized byte length of `n` values ending at `last` — used to
    /// pick the cheapest codec without encoding.
    pub fn encoded_byte_len(n: usize, last: u64) -> usize {
        if n == 0 {
            return 4;
        }
        let l = ef_low_width(n, last);
        4 + 8 + PackedInts::byte_len(n, l) + ((last >> l) as usize + n).div_ceil(8)
    }

    /// Serializes: `n u32 | last u64 | low bytes | high bytes` (the widths
    /// and byte lengths are all derived from `n` and `last`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::encoded_byte_len(self.n, self.last));
        out.extend_from_slice(&u32::try_from(self.n).expect("n fits u32").to_le_bytes());
        if self.n > 0 {
            out.extend_from_slice(&self.last.to_le_bytes());
            out.extend_from_slice(self.lows.as_bytes());
            out.extend_from_slice(&self.high);
        }
        out
    }

    /// Deserializes bytes written by [`EliasFano::to_bytes`]. `None` when
    /// the buffer is not exactly one well-formed sequence.
    pub fn from_bytes(bytes: &[u8]) -> Option<EliasFano> {
        let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        if n == 0 {
            if bytes.len() != 4 {
                return None;
            }
            return Some(EliasFano::encode(&[]));
        }
        let last = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
        let l = ef_low_width(n, last);
        let low_bytes = PackedInts::byte_len(n, l);
        let high_bytes = ((last >> l) as usize + n).div_ceil(8);
        if bytes.len() != 12 + low_bytes + high_bytes {
            return None;
        }
        let lows = PackedInts::from_bytes(&bytes[12..12 + low_bytes], l, n)?;
        let high = bytes[12 + low_bytes..].to_vec();
        Some(EliasFano {
            n,
            last,
            low_width: l,
            lows,
            high,
        })
    }

    fn high_bit_len(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            (self.last >> self.low_width) as usize + self.n
        }
    }

    /// A streaming cursor at the first element.
    pub fn cursor(&self) -> EfCursor<'_> {
        EfCursor {
            ef: self,
            idx: 0,
            pos: 0,
        }
    }

    /// Decodes the whole sequence.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n);
        let mut c = self.cursor();
        while let Some(v) = c.next() {
            out.push(v);
        }
        out
    }
}

/// Streaming decoder over an [`EliasFano`] sequence: forward-only, with
/// skip-capable [`EfCursor::next_geq`].
pub struct EfCursor<'a> {
    ef: &'a EliasFano,
    /// Next element index.
    idx: usize,
    /// Next unexamined bit in the high vector.
    pos: usize,
}

impl<'a> EfCursor<'a> {
    /// The next value without consuming it. `None` at the end of the
    /// sequence — including corrupt encodings whose high vector runs out
    /// of set bits early.
    pub fn peek(&mut self) -> Option<u64> {
        if self.idx >= self.ef.n {
            return None;
        }
        let total = self.ef.high_bit_len();
        loop {
            if self.pos >= total {
                return None;
            }
            // Skip whole zero bytes between clusters.
            if self.pos.is_multiple_of(8) {
                while self.pos + 8 <= total && self.ef.high[self.pos / 8] == 0 {
                    self.pos += 8;
                }
                if self.pos >= total {
                    return None;
                }
            }
            if get_bit(&self.ef.high, self.pos) {
                break;
            }
            self.pos += 1;
        }
        let zeros = (self.pos - self.idx) as u64;
        Some((zeros << self.ef.low_width) | self.ef.lows.get(self.idx))
    }

    /// Consumes and returns the next value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u64> {
        let v = self.peek()?;
        self.pos += 1;
        self.idx += 1;
        Some(v)
    }

    /// Consumes values up to and including the first one `>= target` and
    /// returns it, skipping whole bytes of the high vector while the
    /// target's high bucket is still ahead — the sublinear jump galloping
    /// intersection relies on. Like [`EfCursor::next`], the returned value
    /// is consumed.
    pub fn next_geq(&mut self, target: u64) -> Option<u64> {
        let hb = target >> self.ef.low_width;
        let total = self.ef.high_bit_len();
        // Every element before the hb-th zero has a high bucket < hb; skip
        // byte-wise while a whole byte's zeros still leave us short of it.
        while self.pos < total && self.idx < self.ef.n {
            let zeros_so_far = (self.pos - self.idx) as u64;
            if zeros_so_far >= hb {
                break;
            }
            let off = self.pos % 8;
            let rest = self.ef.high[self.pos / 8] >> off;
            let nbits = (8 - off).min(total - self.pos);
            let ones = (u32::from(rest) & mask(nbits as u32) as u32).count_ones() as usize;
            let zeros_in_rest = (nbits - ones) as u64;
            if zeros_so_far + zeros_in_rest < hb {
                self.pos += nbits;
                self.idx += ones;
            } else {
                // The boundary zero lies inside this byte: single-bit step.
                if get_bit(&self.ef.high, self.pos) {
                    self.idx += 1;
                }
                self.pos += 1;
            }
        }
        loop {
            let v = self.next()?;
            if v >= target {
                return Some(v);
            }
        }
    }
}

/// Intersects two Elias-Fano sequences by alternating [`EfCursor::next_geq`]
/// jumps — the galloping intersection kernel running directly on the
/// compressed form, without materializing either side.
pub fn gallop_intersect(a: &EliasFano, b: &EliasFano) -> Vec<u64> {
    let mut out = Vec::new();
    let mut ca = a.cursor();
    let mut cb = b.cursor();
    let (Some(mut va), Some(mut vb)) = (ca.next(), cb.next()) else {
        return out;
    };
    loop {
        match va.cmp(&vb) {
            std::cmp::Ordering::Equal => {
                out.push(va);
                match (ca.next(), cb.next()) {
                    (Some(x), Some(y)) => {
                        va = x;
                        vb = y;
                    }
                    _ => break,
                }
            }
            std::cmp::Ordering::Less => match ca.next_geq(vb) {
                Some(x) => va = x,
                None => break,
            },
            std::cmp::Ordering::Greater => match cb.next_geq(va) {
                Some(x) => vb = x,
                None => break,
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_stream_round_trips_mixed_widths() {
        let mut w = BitWriter::new();
        let cases: Vec<(u64, u32)> = vec![
            (0, 0),
            (1, 1),
            (0b101, 3),
            (u64::MAX, 64),
            (12345, 17),
            (0, 5),
            (u64::from(u32::MAX), 32),
        ];
        for &(v, width) in &cases {
            w.write(v, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &cases {
            assert_eq!(r.read(width), Some(v), "width {width}");
        }
    }

    #[test]
    fn bit_reader_bounds_checked() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read(8), Some(0xff));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn gamma_round_trips() {
        let mut w = BitWriter::new();
        let vals = [1u64, 2, 3, 7, 8, 100, 65_536, u64::MAX];
        for &v in &vals {
            assert!(gamma_bit_len(v) >= 1);
            w.write_gamma(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_gamma(), Some(v));
        }
    }

    #[test]
    fn gamma_rejects_runaway_unary() {
        let zeros = [0u8; 16];
        let mut r = BitReader::new(&zeros);
        assert_eq!(r.read_gamma(), None);
    }

    #[test]
    fn packed_ints_random_access() {
        let values: Vec<u64> = (0..1000).map(|i| (i * 37) % 1024).collect();
        let w = PackedInts::width_for(1023);
        assert_eq!(w, 10);
        let p = PackedInts::pack(&values, w);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
        let back = PackedInts::from_bytes(p.as_bytes(), w, values.len()).unwrap();
        assert_eq!(back, p);
        assert!(PackedInts::from_bytes(&p.as_bytes()[..p.as_bytes().len() - 1], w, 1000).is_none());
    }

    #[test]
    fn packed_ints_zero_width() {
        let p = PackedInts::pack(&[0, 0, 0], 0);
        assert_eq!(p.as_bytes().len(), 0);
        assert_eq!(p.get(2), 0);
    }

    #[test]
    fn elias_fano_round_trips() {
        for values in [
            vec![],
            vec![0u64],
            vec![u64::from(u32::MAX)],
            (0..10_000u64).map(|i| i * 3).collect(),
            vec![1, 1, 1, 2, 2, 900_000],
            (0..65_536u64).collect(),
        ] {
            let ef = EliasFano::encode(&values);
            assert_eq!(ef.to_vec(), values);
            let bytes = ef.to_bytes();
            assert_eq!(
                bytes.len(),
                EliasFano::encoded_byte_len(values.len(), values.last().copied().unwrap_or(0))
            );
            let back = EliasFano::from_bytes(&bytes).unwrap();
            assert_eq!(back.to_vec(), values);
        }
    }

    #[test]
    fn elias_fano_from_bytes_rejects_bad_lengths() {
        let ef = EliasFano::encode(&[5, 10, 20]);
        let bytes = ef.to_bytes();
        assert!(EliasFano::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(EliasFano::from_bytes(&extra).is_none());
        assert!(EliasFano::from_bytes(&[]).is_none());
    }

    #[test]
    fn next_geq_skips_correctly() {
        let values: Vec<u64> = (0..5_000u64).map(|i| i * 7 + 3).collect();
        let ef = EliasFano::encode(&values);
        let mut c = ef.cursor();
        assert_eq!(c.next_geq(0), Some(3));
        assert_eq!(c.next(), Some(10));
        assert_eq!(c.next_geq(100), Some(101)); // 14*7+3
        assert_eq!(c.next_geq(34_995), Some(34_996)); // penultimate
        assert_eq!(c.next_geq(40_000), None);
    }

    #[test]
    fn gallop_intersect_matches_naive() {
        let a: Vec<u64> = (0..3_000u64).map(|i| i * 5).collect();
        let b: Vec<u64> = (0..2_500u64).map(|i| i * 7).collect();
        let ea = EliasFano::encode(&a);
        let eb = EliasFano::encode(&b);
        let got = gallop_intersect(&ea, &eb);
        let naive: Vec<u64> = a.iter().copied().filter(|v| v % 7 == 0).collect();
        assert_eq!(got, naive);
        assert_eq!(gallop_intersect(&eb, &ea), naive);
        assert!(gallop_intersect(&ea, &EliasFano::encode(&[])).is_empty());
    }

    #[test]
    fn corrupt_high_vector_ends_iteration_not_panics() {
        let ef = EliasFano::encode(&[1, 2, 3, 4, 5]);
        let mut bytes = ef.to_bytes();
        // Zero out the high vector: decode must stop early, never panic.
        let n = bytes.len();
        for b in &mut bytes[n - 2..] {
            *b = 0;
        }
        if let Some(back) = EliasFano::from_bytes(&bytes) {
            let decoded = back.to_vec();
            assert!(decoded.len() <= 5);
        }
    }
}
