//! The top-level two-level bitmap.

use crate::container::Container;
use crate::iter::Iter;
use crate::RecordId;

/// A compressed set of [`RecordId`]s.
///
/// Internally a sorted association from the high 16 bits of each value to a
/// [`Container`] holding the low 16 bits. See the crate docs for the layout
/// rationale.
#[derive(Clone, Default)]
pub struct Bitmap {
    pub(crate) keys: Vec<u16>,
    pub(crate) containers: Vec<Container>,
}

#[inline]
pub(crate) fn split(v: RecordId) -> (u16, u16) {
    ((v >> 16) as u16, v as u16)
}

#[inline]
pub(crate) fn join(key: u16, low: u16) -> RecordId {
    (RecordId::from(key) << 16) | RecordId::from(low)
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bitmap containing every id in `from..to`.
    pub fn from_range(range: std::ops::Range<RecordId>) -> Self {
        let mut b = Bitmap::new();
        // Bulk path: insert chunk-aligned runs directly.
        let mut v = range.start;
        while v < range.end {
            let (key, low) = split(v);
            let chunk_end = (u64::from(join(key, u16::MAX)) + 1).min(u64::from(range.end));
            let last_low = (chunk_end - 1) as u16;
            b.keys.push(key);
            b.containers
                .push(Container::Runs(vec![crate::container::Run {
                    start: low,
                    len: last_low - low,
                }]));
            v = match chunk_end.try_into() {
                Ok(v) => v,
                Err(_) => break, // chunk_end == 2^32: range exhausted
            };
        }
        b
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u64 {
        self.containers.iter().map(Container::len).sum()
    }

    /// True when no id is set.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    #[inline]
    fn key_index(&self, key: u16) -> Result<usize, usize> {
        self.keys.binary_search(&key)
    }

    /// True iff `v` is in the set.
    pub fn contains(&self, v: RecordId) -> bool {
        let (key, low) = split(v);
        match self.key_index(key) {
            Ok(i) => self.containers[i].contains(low),
            Err(_) => false,
        }
    }

    /// Adds `v`; returns true if it was newly added.
    pub fn insert(&mut self, v: RecordId) -> bool {
        let (key, low) = split(v);
        match self.key_index(key) {
            Ok(i) => self.containers[i].insert(low),
            Err(i) => {
                self.keys.insert(i, key);
                self.containers.insert(i, Container::singleton(low));
                true
            }
        }
    }

    /// Removes `v`; returns true if it was present.
    pub fn remove(&mut self, v: RecordId) -> bool {
        let (key, low) = split(v);
        match self.key_index(key) {
            Ok(i) => {
                let was = self.containers[i].remove(low);
                if self.containers[i].is_empty() {
                    self.keys.remove(i);
                    self.containers.remove(i);
                }
                was
            }
            Err(_) => false,
        }
    }

    /// Number of set ids strictly below `v`.
    ///
    /// When the bitmap indexes the presence rows of a sparse column, this is
    /// exactly the offset of `v`'s value in the dense value vector.
    pub fn rank(&self, v: RecordId) -> u64 {
        let (key, low) = split(v);
        let mut r = 0u64;
        for (i, &k) in self.keys.iter().enumerate() {
            if k < key {
                r += self.containers[i].len();
            } else if k == key {
                r += self.containers[i].rank(low);
                break;
            } else {
                break;
            }
        }
        r
    }

    /// The `i`-th smallest id (0-based), or `None` when `i >= len()`.
    pub fn select(&self, mut i: u64) -> Option<RecordId> {
        for (ci, c) in self.containers.iter().enumerate() {
            let card = c.len();
            if i < card {
                return Some(join(self.keys[ci], c.select(i)));
            }
            i -= card;
        }
        None
    }

    /// Smallest id in the set.
    pub fn min(&self) -> Option<RecordId> {
        let c = self.containers.first()?;
        Some(join(self.keys[0], c.min()?))
    }

    /// Largest id in the set.
    pub fn max(&self) -> Option<RecordId> {
        let c = self.containers.last()?;
        Some(join(*self.keys.last()?, c.max()?))
    }

    /// Iterates ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(self)
    }

    /// Converts to a sorted `Vec` of ids.
    pub fn to_vec(&self) -> Vec<RecordId> {
        self.iter().collect()
    }

    /// Re-encodes every chunk in its smallest representation. Call after a
    /// bulk load; binary operations preserve whatever forms they meet.
    pub fn optimize(&mut self) {
        for c in &mut self.containers {
            c.optimize();
        }
    }

    /// Approximate heap bytes used (the figure the paper's space budget
    /// reasoning is expressed in).
    pub fn size_in_bytes(&self) -> usize {
        let header = self.keys.len() * (2 + std::mem::size_of::<Container>());
        header
            + self
                .containers
                .iter()
                .map(Container::size_in_bytes)
                .sum::<usize>()
    }

    /// True iff every id in `self` is in `other`.
    pub fn is_subset(&self, other: &Bitmap) -> bool {
        for (i, &k) in self.keys.iter().enumerate() {
            match other.key_index(k) {
                Ok(j) => {
                    if !self.containers[i].is_subset(&other.containers[j]) {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
        true
    }

    /// Cardinality of the intersection, computed without materializing it.
    pub fn and_len(&self, other: &Bitmap) -> u64 {
        let mut total = 0u64;
        for (i, &k) in self.keys.iter().enumerate() {
            if let Ok(j) = other.key_index(k) {
                total += self.containers[i].and_len(&other.containers[j]);
            }
        }
        total
    }

    pub(crate) fn push_container(&mut self, key: u16, c: Container) {
        debug_assert!(self.keys.last().is_none_or(|&k| k < key));
        debug_assert!(!c.is_empty());
        if let Container::Words(w) = &c {
            w.debug_check_card();
        }
        self.keys.push(key);
        self.containers.push(c);
    }

    /// The subset of `self` falling in `range` — the shard-local view used
    /// by horizontal record sharding. Chunks fully inside the range are
    /// cloned verbatim; only the (at most two) boundary chunks are masked.
    pub fn slice(&self, range: std::ops::Range<RecordId>) -> Bitmap {
        let mut out = Bitmap::new();
        if range.start >= range.end {
            return out;
        }
        let (start_key, start_low) = split(range.start);
        let (end_key, end_low) = split(range.end - 1);
        for (i, &k) in self.keys.iter().enumerate() {
            if k < start_key {
                continue;
            }
            if k > end_key {
                break;
            }
            let lo = if k == start_key { start_low } else { 0 };
            let hi = if k == end_key { end_low } else { u16::MAX };
            if lo == 0 && hi == u16::MAX {
                out.push_container(k, self.containers[i].clone());
            } else {
                let mask = Container::Runs(vec![crate::container::Run {
                    start: lo,
                    len: hi - lo,
                }]);
                if let Some(c) = self.containers[i].and(&mask) {
                    out.push_container(k, c);
                }
            }
        }
        out
    }

    /// In-place union optimized for the shard-merge pattern: `other`'s ids
    /// lie at or above `self`'s current maximum chunk, so whole chunks are
    /// appended and only a shared boundary chunk needs a real union. Falls
    /// back to element-wise insertion if the precondition does not hold, so
    /// the result is always the exact union.
    pub fn append_disjoint(&mut self, other: &Bitmap) {
        for (i, &k) in other.keys.iter().enumerate() {
            match self.keys.last().copied() {
                Some(last) if k == last => {
                    let j = self.containers.len() - 1;
                    self.containers[j] = self.containers[j].or(&other.containers[i]);
                }
                Some(last) if k < last => {
                    for low in other.containers[i].to_array() {
                        self.insert(join(k, low));
                    }
                }
                _ => self.push_container(k, other.containers[i].clone()),
            }
        }
    }
}

impl FromIterator<RecordId> for Bitmap {
    fn from_iter<T: IntoIterator<Item = RecordId>>(iter: T) -> Self {
        let mut b = Bitmap::new();
        b.extend(iter);
        b
    }
}

impl Extend<RecordId> for Bitmap {
    fn extend<T: IntoIterator<Item = RecordId>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Bitmap {}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.len();
        write!(f, "Bitmap(len={n}")?;
        if n <= 16 {
            write!(f, ", {:?}", self.to_vec())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_across_chunks() {
        let mut b = Bitmap::new();
        let vals = [0u32, 1, 65535, 65536, 1 << 20, u32::MAX];
        for &v in &vals {
            assert!(b.insert(v));
            assert!(!b.insert(v));
        }
        assert_eq!(b.len(), vals.len() as u64);
        for &v in &vals {
            assert!(b.contains(v));
        }
        assert!(!b.contains(2));
        assert!(b.remove(65536));
        assert!(!b.remove(65536));
        assert!(!b.contains(65536));
        assert_eq!(b.len(), vals.len() as u64 - 1);
    }

    #[test]
    fn from_range_spans_chunks() {
        let b = Bitmap::from_range(65000..70000);
        assert_eq!(b.len(), 5000);
        assert_eq!(b.min(), Some(65000));
        assert_eq!(b.max(), Some(69999));
        assert!(b.contains(65535));
        assert!(b.contains(65536));
        assert!(!b.contains(70000));
    }

    #[test]
    fn rank_select_round_trip() {
        let b: Bitmap = (0..10_000u32).map(|v| v * 13).collect();
        for i in [0u64, 1, 999, 9999] {
            let v = b.select(i).unwrap();
            assert_eq!(b.rank(v), i);
        }
        assert_eq!(b.select(10_000), None);
        assert_eq!(b.rank(0), 0);
        assert_eq!(b.rank(u32::MAX), 10_000);
    }

    #[test]
    fn subset_and_and_len() {
        let big: Bitmap = (0..1000u32).collect();
        let small: Bitmap = (100..200u32).collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert_eq!(big.and_len(&small), 100);
    }

    #[test]
    fn eq_is_representation_independent() {
        let mut a: Bitmap = (0..5000u32).collect();
        let b = Bitmap::from_range(0..5000);
        a.optimize();
        assert_eq!(a, b);
    }

    #[test]
    fn slice_matches_filtered_iteration() {
        let b: Bitmap = (0..200_000u32).map(|v| v * 7).collect();
        for range in [0..0u32, 0..1, 100..100_000, 65_530..65_540, 0..u32::MAX] {
            let sliced = b.slice(range.clone());
            let expect: Bitmap = b.iter().filter(|v| range.contains(v)).collect();
            assert_eq!(sliced, expect, "range {range:?}");
        }
    }

    #[test]
    fn slice_clones_interior_chunks_and_masks_boundaries() {
        let b = Bitmap::from_range(0..300_000);
        let s = b.slice(70_000..200_001);
        assert_eq!(s.len(), 130_001);
        assert_eq!(s.min(), Some(70_000));
        assert_eq!(s.max(), Some(200_000));
    }

    #[test]
    fn append_disjoint_reassembles_shards() {
        let b: Bitmap = (0..50_000u32).map(|v| v * 13).collect();
        // Shard at non-chunk-aligned boundaries so shards share chunks.
        let bounds = [0u32, 70_001, 140_002, 650_000 * 13];
        let mut merged = Bitmap::new();
        for w in bounds.windows(2) {
            merged.append_disjoint(&b.slice(w[0]..w[1]));
        }
        assert_eq!(merged, b);
    }

    #[test]
    fn append_disjoint_handles_out_of_order_input() {
        let hi: Bitmap = (100_000..100_100u32).collect();
        let lo: Bitmap = (0..100u32).collect();
        let mut merged = Bitmap::new();
        merged.append_disjoint(&hi);
        merged.append_disjoint(&lo); // precondition violated: falls back
        let expect: Bitmap = lo.iter().chain(hi.iter()).collect();
        assert_eq!(merged, expect);
    }

    #[test]
    fn empty_bitmap_basics() {
        let b = Bitmap::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.min(), None);
        assert_eq!(b.max(), None);
        assert_eq!(b.select(0), None);
        assert_eq!(b.iter().count(), 0);
    }
}
