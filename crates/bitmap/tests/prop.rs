//! Property tests: the compressed bitmap must agree with a `BTreeSet` model
//! on every operation, across representation boundaries.

use std::collections::BTreeSet;

use graphbi_bitmap::{Bitmap, BitmapBuilder};
use proptest::prelude::*;

fn id_vec() -> impl Strategy<Value = Vec<u32>> {
    // Mix of clustered (small range) and scattered ids so array, words and
    // run containers all get exercised.
    prop::collection::vec(
        prop_oneof![0u32..2_000, 60_000u32..70_000, prop::num::u32::ANY],
        0..600,
    )
}

fn model(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

fn bitmap(ids: &[u32]) -> Bitmap {
    ids.iter().copied().collect()
}

proptest! {
    #[test]
    fn insert_matches_model(ids in id_vec()) {
        let m = model(&ids);
        let b = bitmap(&ids);
        prop_assert_eq!(b.len(), m.len() as u64);
        prop_assert_eq!(b.to_vec(), m.iter().copied().collect::<Vec<_>>());
        for &v in m.iter().take(50) {
            prop_assert!(b.contains(v));
        }
    }

    #[test]
    fn binary_ops_match_model(a in id_vec(), b in id_vec()) {
        let (ma, mb) = (model(&a), model(&b));
        let (ba, bb) = (bitmap(&a), bitmap(&b));
        let and: Vec<u32> = ma.intersection(&mb).copied().collect();
        let or: Vec<u32> = ma.union(&mb).copied().collect();
        let diff: Vec<u32> = ma.difference(&mb).copied().collect();
        let xor: Vec<u32> = ma.symmetric_difference(&mb).copied().collect();
        prop_assert_eq!(ba.and(&bb).to_vec(), and.clone());
        prop_assert_eq!(ba.or(&bb).to_vec(), or);
        prop_assert_eq!(ba.and_not(&bb).to_vec(), diff);
        prop_assert_eq!(ba.xor(&bb).to_vec(), xor);
        prop_assert_eq!(ba.and_len(&bb), and.len() as u64);
        prop_assert_eq!(ba.is_subset(&bb), ma.is_subset(&mb));
    }

    /// Every in-place op equals its allocating counterpart, across the full
    /// representation matrix: both operands in built form and in
    /// post-`optimize` form (which enables run containers).
    #[test]
    fn inplace_ops_match_allocating(
        a in id_vec(),
        b in id_vec(),
        optimize_a in any::<bool>(),
        optimize_b in any::<bool>(),
    ) {
        let (mut ba, mut bb) = (bitmap(&a), bitmap(&b));
        if optimize_a {
            ba.optimize();
        }
        if optimize_b {
            bb.optimize();
        }
        let mut anded = ba.clone();
        anded.and_inplace(&bb);
        prop_assert_eq!(&anded, &ba.and(&bb));
        let mut orred = ba.clone();
        orred.or_inplace(&bb);
        prop_assert_eq!(&orred, &ba.or(&bb));
        let mut diffed = ba.clone();
        diffed.and_not_inplace(&bb);
        prop_assert_eq!(&diffed, &ba.and_not(&bb));
        prop_assert_eq!(anded.cardinality_hint(), anded.len());
    }

    /// Same equivalence at container boundaries and the edges of the id
    /// space (`u32::MAX` et al.), where chunk handoff bugs would live.
    #[test]
    fn inplace_ops_match_allocating_at_boundaries(
        a in boundary_ids(),
        b in boundary_ids(),
        optimize_a in any::<bool>(),
    ) {
        let (mut ba, bb) = (bitmap(&a), bitmap(&b));
        if optimize_a {
            ba.optimize();
        }
        let mut anded = ba.clone();
        anded.and_inplace(&bb);
        prop_assert_eq!(&anded, &ba.and(&bb));
        let mut orred = ba.clone();
        orred.or_inplace(&bb);
        prop_assert_eq!(&orred, &ba.or(&bb));
        let mut diffed = ba.clone();
        diffed.and_not_inplace(&bb);
        prop_assert_eq!(&diffed, &ba.and_not(&bb));
    }

    /// `and_many` is order-insensitive: the planner may permute conjunction
    /// operands freely without changing the result.
    #[test]
    fn and_many_order_never_changes_result(
        sets in prop::collection::vec(id_vec(), 1..5),
        rot in 0usize..5,
    ) {
        let bitmaps: Vec<Bitmap> = sets.iter().map(|s| bitmap(s)).collect();
        let forward = Bitmap::and_many(bitmaps.iter());
        let mut rotated: Vec<&Bitmap> = bitmaps.iter().collect();
        rotated.rotate_left(rot % bitmaps.len());
        prop_assert_eq!(&Bitmap::and_many(rotated), &forward);
        let reversed = Bitmap::and_many(bitmaps.iter().rev());
        prop_assert_eq!(&reversed, &forward);
    }

    #[test]
    fn ops_survive_optimize(a in id_vec(), b in id_vec()) {
        let (mut ba, mut bb) = (bitmap(&a), bitmap(&b));
        let plain = ba.and(&bb);
        ba.optimize();
        bb.optimize();
        prop_assert_eq!(ba.and(&bb), plain);
        prop_assert_eq!(&ba, &bitmap(&a));
    }

    #[test]
    fn rank_select_inverse(ids in id_vec()) {
        let b = bitmap(&ids);
        let n = b.len();
        for i in (0..n).step_by(7.max(n as usize / 13 + 1)) {
            let v = b.select(i).unwrap();
            prop_assert_eq!(b.rank(v), i);
        }
        prop_assert_eq!(b.select(n), None);
    }

    #[test]
    fn codec_round_trip(ids in id_vec()) {
        let mut b = bitmap(&ids);
        b.optimize();
        let bytes = b.encode();
        prop_assert_eq!(bytes.len(), b.encoded_len());
        let back = Bitmap::decode(&mut bytes.clone()).unwrap();
        prop_assert_eq!(back, b);
    }

    #[test]
    fn builder_equals_inserts(ids in id_vec()) {
        let sorted: Vec<u32> = model(&ids).into_iter().collect();
        let built = sorted.iter().copied().collect::<BitmapBuilder>().finish();
        prop_assert_eq!(built, bitmap(&ids));
    }

    #[test]
    fn ewah_agrees_with_roaring(a in id_vec(), b in id_vec()) {
        use graphbi_bitmap::ewah::EwahBitmap;
        let (ma, mb) = (model(&a), model(&b));
        let ea = EwahBitmap::from_sorted(ma.iter().copied());
        let eb = EwahBitmap::from_sorted(mb.iter().copied());
        prop_assert_eq!(ea.len(), ma.len() as u64);
        prop_assert_eq!(ea.iter().collect::<Vec<_>>(), ma.iter().copied().collect::<Vec<_>>());
        let and: Vec<u32> = ma.intersection(&mb).copied().collect();
        let or: Vec<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(ea.and(&eb).iter().collect::<Vec<_>>(), and);
        prop_assert_eq!(ea.or(&eb).iter().collect::<Vec<_>>(), or);
        prop_assert_eq!(ea.to_bitmap(), bitmap(&a));
    }

    #[test]
    fn remove_matches_model(ids in id_vec(), remove in id_vec()) {
        let mut m = model(&ids);
        let mut b = bitmap(&ids);
        for &v in &remove {
            prop_assert_eq!(b.remove(v), m.remove(&v));
        }
        prop_assert_eq!(b.to_vec(), m.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn and_many_equals_fold(sets in prop::collection::vec(id_vec(), 1..5)) {
        let bitmaps: Vec<Bitmap> = sets.iter().map(|s| bitmap(s)).collect();
        let fold = bitmaps[1..]
            .iter()
            .fold(bitmaps[0].clone(), |acc, b| acc.and(b));
        prop_assert_eq!(Bitmap::and_many(bitmaps.iter()), fold);
    }

    #[test]
    fn slice_matches_model_at_container_boundaries(
        ids in boundary_ids(),
        a in boundary_point(),
        b in boundary_point(),
    ) {
        let (start, end) = (a.min(b), a.max(b));
        let m = model(&ids);
        let bm = bitmap(&ids);
        let expect: Vec<u32> = m.range(start..end).copied().collect();
        prop_assert_eq!(bm.slice(start..end).to_vec(), expect);
        // Empty and reversed ranges select nothing.
        prop_assert_eq!(bm.slice(start..start).len(), 0);
        prop_assert_eq!(bm.slice(end..start).len(), 0);
    }

    #[test]
    fn append_disjoint_reassembles_a_boundary_split(
        ids in boundary_ids(),
        p in boundary_point(),
    ) {
        let bm = bitmap(&ids);
        // `slice` can't express an end of 2^32, so the high half comes
        // from the model (it may contain u32::MAX).
        let mut low = bm.slice(0..p);
        let high: Bitmap = model(&ids).range(p..).copied().collect();
        low.append_disjoint(&high);
        prop_assert_eq!(low, bm);
    }

    #[test]
    fn and_many_matches_fold_at_boundaries(
        sets in prop::collection::vec(boundary_ids(), 1..5),
    ) {
        let bitmaps: Vec<Bitmap> = sets.iter().map(|s| bitmap(s)).collect();
        let fold = bitmaps[1..]
            .iter()
            .fold(bitmaps[0].clone(), |acc, b| acc.and(b));
        prop_assert_eq!(Bitmap::and_many(bitmaps.iter()), fold);
    }
}

/// Ids hugging container boundaries (multiples of 65 536) and the edges
/// of the id space, so every container split/merge path runs.
fn boundary_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            boundary_point(),
            Just(0u32),
            Just(u32::MAX),
            Just(u32::MAX - 1),
            prop::num::u32::ANY,
        ],
        0..500,
    )
}

/// A point within ±2 of a container boundary (or anywhere).
fn boundary_point() -> impl Strategy<Value = u32> {
    prop_oneof![
        ((0u32..8), (0u32..5)).prop_map(|(k, d)| (k * 65_536).saturating_add(d).saturating_sub(2)),
        Just(u32::MAX),
        prop::num::u32::ANY,
    ]
}

/// The top of the id space is an ordinary place: `u32::MAX` inserts,
/// ranks, slices and survives `and_many` like any other id.
#[test]
fn id_space_extremes_behave() {
    assert_eq!(
        Bitmap::and_many(std::iter::empty::<&Bitmap>()),
        Bitmap::new()
    );
    let top: Bitmap = [0u32, u32::MAX - 1, u32::MAX].into_iter().collect();
    assert!(top.contains(u32::MAX));
    assert_eq!(top.rank(u32::MAX), 2);
    assert_eq!(
        top.slice(u32::MAX - 1..u32::MAX).to_vec(),
        vec![u32::MAX - 1]
    );
    let mut low = top.slice(0..u32::MAX - 1);
    low.append_disjoint(&[u32::MAX - 1, u32::MAX].into_iter().collect());
    assert_eq!(low, top);
}
