//! Robustness: decoding arbitrary bytes must never panic — it either
//! produces a valid bitmap or a structured error.

use graphbi_bitmap::Bitmap;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = bytes::Bytes::from(bytes);
        if let Ok(b) = Bitmap::decode(&mut buf) {
            // Whatever decoded must behave like a set.
            let v = b.to_vec();
            prop_assert_eq!(v.len() as u64, b.len());
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn decode_truncations_of_valid_encodings_error_cleanly(
        ids in prop::collection::btree_set(0u32..500_000, 1..300),
        cut_ratio in 0.0f64..1.0,
    ) {
        let mut b: Bitmap = ids.into_iter().collect();
        b.optimize();
        let bytes = b.encode();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        if cut == bytes.len() {
            return Ok(());
        }
        let mut slice = bytes.slice(..cut);
        // Truncations must error (or decode a strict prefix structure —
        // never panic, never loop).
        let _ = Bitmap::decode(&mut slice);
    }

    #[test]
    fn bitflips_never_panic(
        ids in prop::collection::btree_set(0u32..100_000, 1..200),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut b: Bitmap = ids.into_iter().collect();
        b.optimize();
        let mut bytes = b.encode().to_vec();
        let i = flip_at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        let mut buf = bytes::Bytes::from(bytes);
        let _ = Bitmap::decode(&mut buf);
    }
}
