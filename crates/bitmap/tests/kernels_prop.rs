//! Property tests: every SIMD kernel must be bit-identical to its scalar
//! counterpart, across lane-unaligned lengths, container boundaries, the
//! edges of the id space, and IEEE-754 special values.
//!
//! These tests use the explicit `*_path` kernel variants rather than the
//! global `force()` override, so they are safe under the parallel test
//! runner (no process-global state is mutated).

use std::collections::BTreeSet;

use graphbi_bitmap::kernels::{self, KernelPath};
use graphbi_bitmap::Bitmap;
use proptest::prelude::*;

const PATHS: [KernelPath; 2] = [KernelPath::Scalar, KernelPath::Simd];

/// Word blocks whose length sweeps across the 4-word AVX2 stride, so the
/// vector body and the scalar tail both run (0..=64 covers every tail
/// residue several times over).
fn word_block() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            Just(u64::MAX),
            Just(1u64),
            Just(1u64 << 63),
            prop::num::u64::ANY,
        ],
        0..=64,
    )
}

fn f64_special() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
        // Every bit pattern is a valid f64, including payload NaNs.
        any::<u64>().prop_map(f64::from_bits),
        -1.0e6..1.0e6f64,
    ]
}

proptest! {
    /// AND/OR/ANDNOT/XOR over equal-length word blocks: identical result
    /// words and identical returned cardinality on both paths.
    #[test]
    fn word_ops_bit_identical(a in word_block(), b in word_block()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        type WordFn = fn(KernelPath, &mut [u64], &[u64]) -> u64;
        let ops: [WordFn; 4] = [
            kernels::and_words_path,
            kernels::or_words_path,
            kernels::andnot_words_path,
            kernels::xor_words_path,
        ];
        for op in ops {
            let mut outs = Vec::new();
            for path in PATHS {
                let mut dst = a.to_vec();
                let card = op(path, &mut dst, b);
                let recount: u64 = dst.iter().map(|w| u64::from(w.count_ones())).sum();
                prop_assert_eq!(card, recount);
                outs.push((dst, card));
            }
            prop_assert_eq!(&outs[0], &outs[1]);
        }
    }

    /// Pure popcount and non-mutating intersection cardinality agree.
    #[test]
    fn counts_bit_identical(a in word_block(), b in word_block()) {
        let n = a.len().min(b.len());
        let expect: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
        for path in PATHS {
            prop_assert_eq!(kernels::popcount_path(path, &a), expect);
            prop_assert_eq!(
                kernels::and_card_path(path, &a[..n], &b[..n]),
                a[..n]
                    .iter()
                    .zip(&b[..n])
                    .map(|(x, y)| u64::from((x & y).count_ones()))
                    .sum::<u64>()
            );
        }
    }

    /// The galloping probe kernel equals `partition_point` on sorted keys,
    /// for every slice length 0..=64 (all 16-lane tail residues).
    #[test]
    fn probe_matches_partition_point(
        mut keys in prop::collection::vec(any::<u16>(), 0..=64),
        needle in any::<u16>(),
    ) {
        keys.sort_unstable();
        keys.dedup();
        let expect = keys.partition_point(|&k| k < needle);
        for path in PATHS {
            prop_assert_eq!(kernels::find_first_geq_u16_path(path, &keys, needle), expect);
        }
    }

    /// fold_f64 is bit-identical lane by lane across paths, including NaN,
    /// infinities and signed zero, for every tail residue.
    ///
    /// Sums use [`bits_eq_mod_nan`]: the payload/sign bits of a NaN
    /// *produced by arithmetic* (e.g. `∞ + −∞`) are unspecified in Rust —
    /// LLVM may canonicalize them differently per path and per opt-level —
    /// so any NaN equals any NaN there. Min/max are value *selects* and so
    /// must preserve input bits exactly; they are compared strictly.
    #[test]
    fn fold_bit_identical_with_specials(values in prop::collection::vec(f64_special(), 0..=64)) {
        let s = kernels::fold_f64_path(KernelPath::Scalar, &values);
        let v = kernels::fold_f64_path(KernelPath::Simd, &values);
        prop_assert_eq!(s.count(), v.count());
        let (ss, sm, sx) = s.lanes();
        let (vs, vm, vx) = v.lanes();
        for lane in 0..4 {
            prop_assert!(bits_eq_mod_nan(ss[lane], vs[lane]));
            prop_assert_eq!(sm[lane].to_bits(), vm[lane].to_bits());
            prop_assert_eq!(sx[lane].to_bits(), vx[lane].to_bits());
        }
        prop_assert!(bits_eq_mod_nan(s.sum(), v.sum()));
        prop_assert_eq!(s.min().to_bits(), v.min().to_bits());
        prop_assert_eq!(s.max().to_bits(), v.max().to_bits());
    }

    /// Bit-unpacking agrees across paths for every width 0..=64 and every
    /// unaligned bit offset a real FoR block can start at.
    #[test]
    fn unpack_bit_identical(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        width in 0u32..=64,
        start in 0usize..64,
        count in 0usize..=64,
    ) {
        let mut outs = Vec::new();
        for path in PATHS {
            let mut out = vec![0u64; count];
            kernels::unpack_bits_path(path, &bytes, start, width, &mut out);
            outs.push(out);
        }
        prop_assert_eq!(&outs[0], &outs[1]);
        if width < 64 {
            for &v in &outs[0] {
                prop_assert!(v < (1u64 << width).max(1));
            }
        }
    }

    /// Dictionary gather agrees across paths: the out-of-bounds verdict is
    /// always identical, and on success the gathered values are bit-exact.
    /// (On rejection the output buffer is unspecified — callers discard it —
    /// so its contents are only compared on the `true` verdict.)
    #[test]
    fn gather_bit_identical(
        dict in prop::collection::vec(f64_special(), 1..64),
        idx in prop::collection::vec(0u64..80, 0..=64),
    ) {
        let mut outs = Vec::new();
        for path in PATHS {
            let mut out = vec![0.0f64; idx.len()];
            let ok = kernels::gather_f64_path(path, &dict, &idx, &mut out);
            outs.push((ok, out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()));
        }
        let expect_ok = idx.iter().all(|&i| (i as usize) < dict.len());
        prop_assert_eq!(outs[0].0, expect_ok);
        prop_assert_eq!(outs[1].0, expect_ok);
        if expect_ok {
            prop_assert_eq!(&outs[0].1, &outs[1].1);
            let expect: Vec<u64> =
                idx.iter().map(|&i| dict[i as usize].to_bits()).collect();
            prop_assert_eq!(&outs[0].1, &expect);
        }
    }

    /// Full container matrix at the bitmap level: ids hugging 65 536
    /// container boundaries and `u32::MAX`, pushed through the dispatched
    /// ops (which route Words×Words work into the kernel layer) and checked
    /// against a `BTreeSet` model. Combined with the path-vs-path kernel
    /// tests above, this pins bitmap results to both kernel paths.
    #[test]
    fn container_matrix_ops_match_model(a in boundary_ids(), b in boundary_ids()) {
        let ma: BTreeSet<u32> = a.iter().copied().collect();
        let mb: BTreeSet<u32> = b.iter().copied().collect();
        let ba: Bitmap = a.iter().copied().collect();
        let bb: Bitmap = b.iter().copied().collect();
        prop_assert_eq!(
            ba.and(&bb).to_vec(),
            ma.intersection(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ba.or(&bb).to_vec(),
            ma.union(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ba.and_not(&bb).to_vec(),
            ma.difference(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ba.xor(&bb).to_vec(),
            ma.symmetric_difference(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(ba.and_len(&bb), ma.intersection(&mb).count() as u64);
        let and = ba.and(&bb);
        prop_assert_eq!(and.cardinality_hint(), and.len());
    }
}

/// Dense runs around container boundaries so Words containers (the kernel
/// fast path) actually form, plus the id-space extremes.
fn boundary_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            // Dense cluster inside one 65 536 chunk -> Words container.
            (0u32..4, 0u32..8_192).prop_map(|(k, d)| k * 65_536 + d),
            // Boundary-hugging points.
            ((0u32..8), (0u32..5))
                .prop_map(|(k, d)| (k * 65_536).saturating_add(d).saturating_sub(2)),
            Just(0u32),
            Just(u32::MAX),
            Just(u32::MAX - 1),
            prop::num::u32::ANY,
        ],
        0..6_000,
    )
}

/// Bit equality, except any NaN equals any NaN: Rust leaves the payload and
/// sign bits of NaNs produced by float *arithmetic* unspecified, so exact
/// bits can only be demanded of non-NaN results (and of bit-preserving
/// selects like min/max, which are compared strictly elsewhere).
fn bits_eq_mod_nan(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Empty inputs are ordinary inputs on every kernel.
#[test]
fn empty_inputs_behave() {
    for path in PATHS {
        assert_eq!(kernels::and_words_path(path, &mut [], &[]), 0);
        assert_eq!(kernels::popcount_path(path, &[]), 0);
        assert_eq!(kernels::find_first_geq_u16_path(path, &[], 7), 0);
        let agg = kernels::fold_f64_path(path, &[]);
        assert_eq!(agg.count(), 0);
        assert!(agg.sum() == 0.0);
        let mut out = [];
        kernels::unpack_bits_path(path, &[], 0, 13, &mut out);
        assert!(kernels::gather_f64_path(path, &[1.0], &[], &mut []));
    }
}

/// On x86-64 the SIMD path must actually be available when the CPU has
/// AVX2, otherwise the differential tests above silently compare scalar
/// to scalar.
#[cfg(target_arch = "x86_64")]
#[test]
fn simd_reported_when_compiled_for_x86() {
    if std::is_x86_feature_detected!("avx2") {
        assert!(kernels::simd_available());
    }
}
