//! End-to-end server tests: every served answer must be bit-identical to
//! the in-process `Session` answer, sessions must hold stable MVCC
//! snapshots while writers commit, and overload must degrade into typed
//! `BUSY` frames — never into hangs, drops or unbounded buffering.

use std::sync::Arc;
use std::time::{Duration, Instant};

use graphbi::{GraphStore, MvccStore, QueryRequest, Session, SharedStore};
use graphbi_columnstore::{DeltaOp, Vfs as _};
use graphbi_serve::{Client, ClientError, ServeConfig, ServeStore, Server};
use graphbi_testkit::Scenario;

/// The scenario's full request workload: graph queries, logical
/// expressions and path aggregations.
fn workload(scenario: &Scenario) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for q in &scenario.queries {
        reqs.push(QueryRequest::new(q.clone()));
    }
    for e in &scenario.exprs {
        reqs.push(QueryRequest::expr(e.clone()));
    }
    for a in &scenario.aggs {
        reqs.push(QueryRequest::aggregate(a.clone()));
    }
    reqs
}

fn expected_texts(store: &impl Session, reqs: &[QueryRequest]) -> Vec<String> {
    store
        .evaluate_many(reqs)
        .expect("in-process evaluation")
        .into_iter()
        .map(|(resp, _)| resp.to_text())
        .collect()
}

#[test]
fn mixed_protocol_session_matches_in_process() {
    let scenario = Scenario::generate(7);
    let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records);
    store.advise_views(&scenario.queries, scenario.view_budget);
    let shared = SharedStore::new(store);
    let reqs = workload(&scenario);
    let expected = expected_texts(&shared, &reqs);

    let server = Server::start(
        ServeStore::Shared(shared.clone()),
        "127.0.0.1:0",
        ServeConfig {
            trace: true,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // The handshake serves the exact universe.
    assert_eq!(client.universe().to_text(), scenario.universe.to_text());

    // Single queries: bit-identical to in-process answers.
    for (req, want) in reqs.iter().zip(&expected) {
        let got = client.query(req).expect("query");
        assert_eq!(&got.to_text(), want, "for {}", req.to_text());
    }

    // One BATCH frame answers the whole workload, in order.
    let got = client.batch(&reqs).expect("batch");
    for ((resp, want), req) in got.iter().zip(&expected).zip(&reqs) {
        assert_eq!(&resp.to_text(), want, "batched {}", req.to_text());
    }

    // A malformed frame gets a typed error and leaves the session usable.
    match client.send_raw("FROBNICATE 12") {
        Ok(line) => assert!(line.starts_with("ERR 110 MALFORMED"), "{line:?}"),
        Err(e) => panic!("malformed frame should answer, got {e}"),
    }
    let again = client.query(&reqs[0]).expect("query after malformed frame");
    assert_eq!(again.to_text(), expected[0]);

    // Profiling returns the JSON profile of a solo run.
    let prof = client.profile(&reqs[0]).expect("profile");
    assert!(prof.starts_with('{') && prof.ends_with('}'), "{prof:?}");

    // Commit through the wire, then re-query: the inserted record is
    // visible (shared backend has one timeline; COMMIT re-pins anyway).
    let before = shared.read(|s| s.record_count());
    let rec = scenario.records[0].clone();
    client
        .commit(&[DeltaOp::Insert(rec)])
        .expect("commit insert");
    assert_eq!(shared.read(|s| s.record_count()), before + 1);
    let fresh = expected_texts(&shared, &reqs[..1]);
    assert_eq!(
        client.query(&reqs[0]).expect("post-commit query").to_text(),
        fresh[0]
    );

    // An op referencing an unknown edge is refused with the stable code.
    let bad = {
        let mut b = graphbi_graph::RecordBuilder::new();
        b.add(graphbi::EdgeId(u32::MAX - 1), 1.0);
        DeltaOp::Insert(b.build())
    };
    match client.commit(&[bad]) {
        Err(ClientError::Remote { code, symbol, .. }) => {
            assert_eq!((code, symbol.as_str()), (101, "UNKNOWN_EDGE"));
        }
        other => panic!("expected UNKNOWN_EDGE, got {other:?}"),
    }

    // The metrics scrape carries the serving counters.
    let metrics = client.metrics().expect("metrics");
    for needle in [
        "graphbi_serve_requests_total",
        "graphbi_serve_batches_total",
        "graphbi_serve_batched_requests_total",
        "graphbi_serve_connections_total",
    ] {
        assert!(
            metrics.contains(needle),
            "metrics missing {needle}:\n{metrics}"
        );
    }

    // Per-connection spans landed in the server's tracer.
    let trace = server.collector().expect("trace enabled").trace();
    for span in ["serve.request", "serve.batch"] {
        assert!(
            trace.spans.iter().any(|s| s.name == span),
            "missing {span} span in {:?}",
            trace.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }

    client.quit().expect("quit");
}

#[test]
fn hello_version_mismatch_is_refused() {
    let scenario = Scenario::generate(11);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records[..4]);
    let server = Server::start(
        ServeStore::Shared(SharedStore::new(store)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server starts");

    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    writeln!(stream, "HELLO graphbi/99").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR 111 UNSUPPORTED"), "{line:?}");
}

/// N reader connections race a committing writer. Every reader pins a
/// snapshot per `REFRESH` and must see answers bit-identical to an
/// in-process store holding exactly that epoch's records — across every
/// interleaving of commits and queries.
#[test]
fn mvcc_readers_race_committing_writer() {
    let scenario = Scenario::generate(23);
    let base = 40.min(scenario.records.len());
    let store = Arc::new(MvccStore::new_mem(GraphStore::load(
        scenario.universe.clone(),
        &scenario.records[..base],
    )));

    // Structural requests only: their answers are exact record sets, so
    // bit-identity across engines is unconditional.
    let mut reqs: Vec<QueryRequest> = scenario
        .queries
        .iter()
        .take(4)
        .map(|q| QueryRequest::new(q.clone()))
        .collect();
    reqs.extend(
        scenario
            .exprs
            .iter()
            .take(2)
            .map(|e| QueryRequest::expr(e.clone())),
    );

    // The writer appends one scenario record per commit; epoch k's store
    // is exactly records[..base + k]. Precompute every epoch's answers.
    let extra: Vec<_> = scenario.records.iter().cycle().take(24).cloned().collect();
    let expected: Vec<Vec<String>> = (0..=extra.len())
        .map(|k| {
            let mut all: Vec<_> = scenario.records[..base].to_vec();
            all.extend(extra[..k].iter().cloned());
            let model = GraphStore::load(scenario.universe.clone(), &all);
            expected_texts(&model, &reqs)
        })
        .collect();

    let server = Server::start(
        ServeStore::Mvcc(Arc::clone(&store)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server starts");
    let addr = server.addr();

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for (i, rec) in extra.iter().enumerate() {
                let epoch = store
                    .commit(&[DeltaOp::Insert(rec.clone())])
                    .expect("commit");
                assert_eq!(epoch, (i + 1) as u64);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let reqs = reqs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut checked = 0usize;
                for _ in 0..12 {
                    let (_gen, epoch) = client.refresh().expect("refresh");
                    let want = &expected[epoch as usize];
                    // The pin holds for the whole batch even though the
                    // writer keeps committing underneath.
                    let got = client.batch(&reqs).expect("batch");
                    for (resp, want) in got.iter().zip(want) {
                        assert_eq!(&resp.to_text(), want, "at epoch {epoch}");
                        checked += 1;
                    }
                    for (req, want) in reqs.iter().zip(want) {
                        assert_eq!(&client.query(req).expect("query").to_text(), want);
                        checked += 1;
                    }
                }
                checked
            })
        })
        .collect();

    writer.join().expect("writer");
    let total: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert_eq!(total, 3 * 12 * reqs.len() * 2);
}

/// Overload: a slow batcher plus a tiny queue must produce typed `BUSY`
/// answers within the admission timeout — while other requests still
/// succeed and nothing hangs or drops.
#[test]
fn overload_answers_typed_busy_within_timeout() {
    let scenario = Scenario::generate(3);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records);
    let admission_timeout = Duration::from_millis(25);
    let server = Server::start(
        ServeStore::Shared(SharedStore::new(store)),
        "127.0.0.1:0",
        ServeConfig {
            queue_depth: 1,
            admission_timeout,
            batch_max: 1,
            batch_delay: Duration::from_millis(60),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let req = QueryRequest::new(scenario.queries[0].clone());

    // A lone request succeeds even with the slow batcher.
    let mut warm = Client::connect(addr).expect("connect");
    warm.query(&req).expect("uncontended query succeeds");

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let started = Instant::now();
                let outcome = client.query(&req);
                let elapsed = started.elapsed();
                match outcome {
                    Ok(_) => (1, 0, elapsed),
                    Err(ClientError::Busy { code, .. }) => {
                        assert_eq!(code, 210);
                        (0, 1, elapsed)
                    }
                    Err(e) => panic!("only OK or BUSY under overload, got {e}"),
                }
            })
        })
        .collect();

    let mut ok = 0;
    let mut busy = 0;
    for c in clients {
        let (o, b, elapsed) = c.join().expect("client");
        if b == 1 {
            // BUSY must arrive promptly: the admission wait plus
            // (generous) scheduling slack, nowhere near the batcher's
            // drain time for eight serialized 60ms batches.
            assert!(
                elapsed < admission_timeout + Duration::from_millis(200),
                "BUSY took {elapsed:?}"
            );
        }
        ok += o;
        busy += b;
    }
    assert!(busy >= 1, "tiny queue + slow batcher must refuse some of 8");
    assert!(ok + busy == 8, "every request got exactly one answer");

    // The refusals are visible in the metrics.
    let metrics = warm.metrics().expect("metrics");
    assert!(metrics.contains("graphbi_serve_busy_total"), "{metrics}");
}

/// Cross-connection coalescing: many idle-then-simultaneous clients on
/// one shared store must land in shared batches, visible in the
/// counters, with answers still bit-identical.
#[test]
fn concurrent_connections_share_batches() {
    let scenario = Scenario::generate(41);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records);
    let shared = SharedStore::new(store);
    let reqs = workload(&scenario);
    let expected = expected_texts(&shared, &reqs);

    let server = Server::start(
        ServeStore::Shared(shared),
        "127.0.0.1:0",
        ServeConfig {
            // A small stall per batch lets concurrent arrivals pile up
            // behind the first, forcing multi-request batches.
            batch_delay: Duration::from_millis(3),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let reg = graphbi_obs::global();
    let batches_before = reg.counter("graphbi_serve_batches_total").get();
    let requests_before = reg.counter("graphbi_serve_batched_requests_total").get();

    let threads: Vec<_> = (0..6)
        .map(|t| {
            let reqs = reqs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..4 {
                    let i = (t + round) % reqs.len();
                    let got = client.query(&reqs[i]).expect("query");
                    assert_eq!(got.to_text(), expected[i]);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let batches = reg.counter("graphbi_serve_batches_total").get() - batches_before;
    let served = reg.counter("graphbi_serve_batched_requests_total").get() - requests_before;
    assert_eq!(served, 24, "every request went through the batcher");
    assert!(
        batches < served,
        "expected some multi-request batches, got {batches} batches for {served} requests"
    );
}

/// `TRACE` must replay a `PROFILE`'s rendering bit-identically — the
/// stored trace is the same `Profile` object whose JSON went on the wire
/// — on both the shared-memory and the disk-backed MVCC store. Sampled
/// queries (solo-profiled by the batcher) must not change any answer.
#[test]
fn trace_replays_profile_bit_identically_on_mem_and_disk() {
    let scenario = Scenario::generate(13);
    let load = || GraphStore::load(scenario.universe.clone(), &scenario.records);
    let reqs = workload(&scenario);
    let expected = expected_texts(&SharedStore::new(load()), &reqs);

    let disk_vfs = Arc::new(graphbi_columnstore::FaultVfs::new(0x71e7));
    let disk_dir = std::path::PathBuf::from("/flightdb");
    graphbi::disk::save_store_with(disk_vfs.as_ref(), &load(), &disk_dir)
        .expect("save disk store");
    let disk = graphbi::MvccStore::open_disk(
        &disk_dir,
        16 << 20,
        disk_vfs,
        graphbi_columnstore::Verify::Checksums,
    )
    .expect("open disk store");

    let backends = [
        ("mem", ServeStore::Shared(SharedStore::new(load()))),
        ("disk", ServeStore::Mvcc(Arc::new(disk))),
    ];
    for (label, serve_store) in backends {
        let server = Server::start(
            serve_store,
            "127.0.0.1:0",
            ServeConfig {
                // Sample every request: each QUERY runs solo through the
                // profiler, the strongest answers-don't-change check.
                sample_every: 1,
                ..ServeConfig::default()
            },
        )
        .expect("server starts");
        let mut client = Client::connect(server.addr()).expect("client connects");

        for (req, want) in reqs.iter().zip(&expected) {
            let got = client.query(req).expect("sampled query");
            assert_eq!(&got.to_text(), want, "[{label}] sampling changed an answer");
            let rid = client.last_request_id().expect("OK head carries id=");
            let replay = client.trace(rid).expect("sampled query is captured");
            let doc = graphbi_obs::json::parse(&replay).expect("trace is JSON");
            assert!(
                doc.get("total_ns").is_some() || doc.get("backend").is_some(),
                "[{label}] trace is not a profile rendering: {replay}"
            );
        }

        // The hinge: PROFILE's payload and TRACE's replay are the same bytes.
        for req in &reqs {
            let prof = client.profile(req).expect("profile");
            let rid = client.last_request_id().expect("PROFILE reply carries id=");
            let replay = client.trace(rid).expect("profiled request is captured");
            assert_eq!(replay, prof, "[{label}] TRACE differs from PROFILE");
        }

        // An id the ring never held answers the stable NOT_FOUND code.
        match client.trace(u64::MAX) {
            Err(ClientError::Remote { code, symbol, .. }) => {
                assert_eq!((code, symbol.as_str()), (112, "NOT_FOUND"), "[{label}]");
            }
            other => panic!("[{label}] expected NOT_FOUND, got {other:?}"),
        }
        client.quit().expect("quit");
    }
}

/// Slow and failing requests are captured regardless of sampling, show
/// up in `SLOWLOG` newest-first, and are appended to the export file as
/// CRC-framed JSON lines that deframe cleanly even with a torn tail.
#[test]
fn slowlog_forces_capture_and_exports_framed_json() {
    let scenario = Scenario::generate(17);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records);
    let reqs = workload(&scenario);
    let export_vfs: Arc<graphbi_columnstore::FaultVfs> =
        Arc::new(graphbi_columnstore::FaultVfs::new(0x510e));
    let export_path = std::path::PathBuf::from("/slowlog.jsonl");

    let server = Server::start(
        ServeStore::Shared(SharedStore::new(store)),
        "127.0.0.1:0",
        ServeConfig {
            // Head sampling off; a zero threshold makes every request
            // "slow", so capture is exercised purely through forcing.
            sample_every: 0,
            slow_threshold: Duration::ZERO,
            slowlog_export: Some(graphbi_serve::SlowlogExport {
                vfs: export_vfs.clone(),
                path: export_path.clone(),
            }),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    for req in reqs.iter().take(3) {
        client.query(req).expect("query");
    }
    // A failing request: captured (forced) and TRACE-able via the id the
    // ERR frame carries as its trailing token.
    let line = client
        .send_raw("QUERY id=42 graph views=2 shards=1 :")
        .expect("malformed query answers");
    assert!(line.starts_with("ERR "), "{line:?}");
    let failed_rid = line
        .rsplit(' ')
        .next()
        .and_then(|tok| tok.strip_prefix("id="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("ERR frame without trailing id=: {line:?}"));
    let replay = client.trace(failed_rid).expect("failure is force-captured");
    let doc = graphbi_obs::json::parse(&replay).expect("trace JSON");
    assert!(doc.get("total_ns").is_some() || doc.get("backend").is_some());

    // SLOWLOG: one JSON entry per request, newest first, rids descending.
    let entries = client.slowlog(Some(16)).expect("slowlog");
    assert!(entries.len() >= 3, "expected ≥3 slow entries, got {entries:?}");
    let mut last_rid = u64::MAX;
    for line in &entries {
        let doc = graphbi_obs::json::parse(line).expect("slowlog entry JSON");
        let rid = doc
            .get("rid")
            .and_then(graphbi_obs::json::Json::as_u64)
            .expect("entry has rid");
        assert!(rid < last_rid, "slowlog not newest-first: {entries:?}");
        last_rid = rid;
        assert!(doc.get("profile").is_some(), "entry carries its profile");
    }
    // The client correlation id rode into the failing request's entry.
    assert!(
        entries
            .iter()
            .any(|l| graphbi_obs::json::parse(l)
                .ok()
                .and_then(|d| d.get("id").and_then(graphbi_obs::json::Json::as_u64))
                == Some(42)),
        "correlation id missing from {entries:?}"
    );

    // The export file deframes into the same number of JSON lines, and a
    // torn tail (partial frame) is silently dropped, not misread.
    let bytes = export_vfs.read(&export_path).expect("export file exists");
    let lines = graphbi_obs::slowlog::read_lines(&bytes);
    assert_eq!(lines.len(), entries.len(), "export count != slowlog count");
    for line in &lines {
        graphbi_obs::json::parse(line).expect("exported line is JSON");
    }
    let mut torn = bytes.clone();
    torn.extend_from_slice(&graphbi_obs::slowlog::frame_line("{\"rid\":999}")[..7]);
    assert_eq!(
        graphbi_obs::slowlog::read_lines(&torn).len(),
        lines.len(),
        "torn tail must be dropped"
    );

    // TOP: one JSON line of live state, recorder section included.
    let top = client.top().expect("top");
    let doc = graphbi_obs::json::parse(&top).expect("TOP is JSON");
    for key in [
        "connections",
        "queue_depth",
        "requests_total",
        "verbs",
        "queue_wait_us",
        "recorder",
    ] {
        assert!(doc.get(key).is_some(), "TOP missing {key}: {top}");
    }
    let rec = doc.get("recorder").unwrap();
    let slow = rec
        .get("slow")
        .and_then(graphbi_obs::json::Json::as_u64)
        .expect("recorder.slow");
    assert!(slow >= entries.len() as u64, "TOP undercounts slow captures");
    assert_eq!(
        rec.get("sample_every").and_then(graphbi_obs::json::Json::as_u64),
        Some(0)
    );
    client.quit().expect("quit");
}

/// Shutdown answers in-flight work: no connection is dropped without a
/// response, and the listener stops accepting.
#[test]
fn shutdown_is_orderly() {
    let scenario = Scenario::generate(5);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records[..8]);
    let mut server = Server::start(
        ServeStore::Shared(SharedStore::new(store)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server starts");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let req = QueryRequest::new(scenario.queries[0].clone());
    client.query(&req).expect("query before shutdown");
    server.shutdown();
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err()
            || Client::connect(addr).is_err(),
        "listener keeps serving after shutdown"
    );
}
