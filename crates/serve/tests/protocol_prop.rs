//! Property tests for the wire grammar and frame parsing.
//!
//! Round-trips are checked *by construction*: rendering any value and
//! parsing it back yields a value that renders identically (text-level
//! equality also covers `NaN`, which breaks `PartialEq`). Malformed
//! input of any shape must be rejected with a typed error — never a
//! panic, never a silent misparse.

use graphbi::{
    AggFn, Bitmap, EdgeId, EvalOptions, GraphQuery, PathAggQuery, PathAggResult, QueryExpr,
    QueryRequest, QueryResult, Response,
};
use graphbi_columnstore::DeltaOp;
use graphbi_graph::RecordBuilder;
use graphbi_serve::protocol::{self, Verb};
use proptest::prelude::*;

fn edges() -> impl Strategy<Value = Vec<EdgeId>> {
    prop::collection::vec((0u32..200).prop_map(EdgeId), 1..8)
}

fn graph_query() -> impl Strategy<Value = GraphQuery> {
    edges().prop_map(GraphQuery::from_edges)
}

fn query_expr() -> impl Strategy<Value = QueryExpr> {
    // Depth ≤ 2 keeps generation cheap while covering every operator and
    // nesting on both sides.
    let atom = || graph_query().prop_map(QueryExpr::Atom).boxed();
    prop_oneof![
        atom(),
        (atom(), atom(), 0u8..3).prop_map(|(a, b, op)| combine(op, a, b)),
        ((atom(), atom(), 0u8..3), atom(), 0u8..3).prop_map(|((a, b, op1), c, op2)| combine(
            op2,
            combine(op1, a, b),
            c
        )),
    ]
}

fn combine(op: u8, a: QueryExpr, b: QueryExpr) -> QueryExpr {
    match op {
        0 => QueryExpr::and(a, b),
        1 => QueryExpr::or(a, b),
        _ => QueryExpr::and_not(a, b),
    }
}

fn agg_fn() -> impl Strategy<Value = AggFn> {
    prop_oneof![
        Just(AggFn::Sum),
        Just(AggFn::Min),
        Just(AggFn::Max),
        Just(AggFn::Avg),
        Just(AggFn::Count),
    ]
}

fn request() -> impl Strategy<Value = QueryRequest> {
    let kind = prop_oneof![
        graph_query().prop_map(QueryRequest::new).boxed(),
        query_expr().prop_map(QueryRequest::expr).boxed(),
        (graph_query(), agg_fn())
            .prop_map(|(q, f)| QueryRequest::aggregate(PathAggQuery::new(q, f)))
            .boxed(),
    ];
    (kind, any::<bool>(), 0usize..9).prop_map(|(req, views, shards)| {
        let options = if views {
            EvalOptions::default()
        } else {
            EvalOptions::oblivious()
        };
        req.opts(options).shards(shards)
    })
}

/// Measures including the floats that usually break text round-trips.
fn measure() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e12..1.0e12f64,
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(1.0 / 3.0),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    let records = (edges(), 0usize..6).prop_flat_map(|(edges, n)| {
        let width = edges.len();
        (
            Just(edges),
            prop::collection::vec(0u32..100_000, n..n + 1),
            prop::collection::vec(measure(), n * width..n * width + 1),
        )
            .prop_map(|(edges, records, measures)| {
                Response::Records(QueryResult {
                    records,
                    edges,
                    measures,
                })
            })
    });
    // Cross the 512-id chunk boundary so multi-chunk framing is exercised.
    let matches = prop::collection::vec(0u32..2_000_000, 0..1400)
        .prop_map(|ids| Response::Matches(ids.into_iter().collect::<Bitmap>()));
    let aggregates = (1usize..5, 0usize..6).prop_flat_map(|(paths, n)| {
        (
            Just(paths),
            prop::collection::vec(0u32..100_000, n..n + 1),
            prop::collection::vec(measure(), n * paths..n * paths + 1),
        )
            .prop_map(|(path_count, records, values)| {
                Response::Aggregates(PathAggResult {
                    records,
                    path_count,
                    values,
                })
            })
    });
    prop_oneof![records, matches, aggregates]
}

fn record() -> impl Strategy<Value = graphbi_graph::GraphRecord> {
    prop::collection::vec(((0u32..200).prop_map(EdgeId), measure()), 1..8).prop_map(|pairs| {
        let mut b = RecordBuilder::new();
        for (e, m) in pairs {
            b.add(e, m);
        }
        b.build()
    })
}

fn delta_op() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        record().prop_map(DeltaOp::Insert),
        (0u32..100_000, record()).prop_map(|(rid, r)| DeltaOp::Update(rid, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_round_trips(req in request()) {
        let text = req.to_text();
        prop_assert!(!text.contains('\n'), "requests are single lines: {text:?}");
        let back = QueryRequest::parse_text(&text)
            .unwrap_or_else(|e| panic!("{text:?}: {e}"));
        prop_assert_eq!(back.to_text(), text);
        // The canonical fields survive exactly (kinds have PartialEq).
        prop_assert_eq!(back.options.use_views, req.options.use_views);
        prop_assert_eq!(back.shards, req.shards);
    }

    #[test]
    fn response_round_trips(resp in response()) {
        let text = resp.to_text();
        let back = Response::parse_text(&text)
            .unwrap_or_else(|e| panic!("{text:?}: {e}"));
        prop_assert_eq!(back.to_text(), text.clone());
        prop_assert_eq!(back.line_count(), text.lines().count());
    }

    #[test]
    fn response_blocks_self_delimit(a in response(), b in response()) {
        let text = format!("{}{}", a.to_text(), b.to_text());
        let mut lines = text.lines();
        let mut lineno = 0usize;
        let first = Response::read_block(&mut lines, &mut lineno).expect("first block");
        let second = Response::read_block(&mut lines, &mut lineno).expect("second block");
        prop_assert_eq!(first.to_text(), a.to_text());
        prop_assert_eq!(second.to_text(), b.to_text());
        prop_assert!(lines.next().is_none(), "stream fully consumed");
    }

    #[test]
    fn commit_ops_round_trip(op in delta_op()) {
        let text = protocol::op_to_text(&op);
        prop_assert!(!text.contains('\n'));
        let back = protocol::parse_op(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
        prop_assert_eq!(protocol::op_to_text(&back), text);
    }

    /// Arbitrary garbage never panics any parser: it is either rejected
    /// with a typed error or (for the self-describing verbs) parsed into
    /// a value that round-trips.
    #[test]
    fn malformed_frames_reject_cleanly(line in "[ -~]{0,120}") {
        if let Ok(req) = QueryRequest::parse_text(&line) {
            // Accepting is fine only if the parse is canonical-faithful.
            prop_assert_eq!(QueryRequest::parse_text(&req.to_text()).unwrap().to_text(),
                            req.to_text());
        }
        let _ = Response::parse_text(&line);
        let _ = protocol::parse_op(&line);
        match protocol::parse_verb(&line) {
            Ok(Verb::Batch { count: n, .. }) | Ok(Verb::Commit(n)) => {
                prop_assert!((1..=protocol::MAX_BATCH).contains(&n));
            }
            _ => {}
        }
    }

    /// The introspection verbs and client correlation ids parse back to
    /// exactly the values that were rendered.
    #[test]
    fn introspection_verbs_round_trip(rid in any::<u64>(), n in 0usize..10_000) {
        match protocol::parse_verb(&format!("TRACE {rid}")) {
            Ok(Verb::Trace(t)) => prop_assert_eq!(t, rid),
            other => prop_assert!(false, "TRACE {} parsed as {:?}", rid, other),
        }
        match protocol::parse_verb(&format!("SLOWLOG {n}")) {
            Ok(Verb::Slowlog(Some(k))) => prop_assert_eq!(k, n),
            other => prop_assert!(false, "SLOWLOG {} parsed as {:?}", n, other),
        }
        prop_assert!(matches!(protocol::parse_verb("SLOWLOG"), Ok(Verb::Slowlog(None))));
        prop_assert!(matches!(protocol::parse_verb("TOP"), Ok(Verb::Top)));
    }

    /// `id=<n>` on QUERY and BATCH is stripped into the parsed verb and
    /// never leaks into the payload.
    #[test]
    fn correlation_ids_round_trip(cid in any::<u64>(), req in request(), k in 1usize..=protocol::MAX_BATCH) {
        let payload = req.to_text();
        match protocol::parse_verb(&format!("QUERY id={cid} {payload}")) {
            Ok(Verb::Query { cid: Some(c), payload: p }) => {
                prop_assert_eq!(c, cid);
                prop_assert_eq!(p, payload.clone());
            }
            other => prop_assert!(false, "parsed as {:?}", other),
        }
        match protocol::parse_verb(&format!("QUERY {payload}")) {
            Ok(Verb::Query { cid: None, payload: p }) => prop_assert_eq!(p, payload.clone()),
            other => prop_assert!(false, "parsed as {:?}", other),
        }
        match protocol::parse_verb(&format!("BATCH {k} id={cid}")) {
            Ok(Verb::Batch { count, cid: Some(c) }) => {
                prop_assert_eq!(count, k);
                prop_assert_eq!(c, cid);
            }
            other => prop_assert!(false, "parsed as {:?}", other),
        }
    }

    /// Truncating a response block anywhere must fail loudly, not return
    /// a shorter answer.
    #[test]
    fn truncated_responses_reject(resp in response(), cut in 0usize..6) {
        let text = resp.to_text();
        let total = text.lines().count();
        if total > 1 && cut < total {
            let kept: Vec<&str> = text.lines().take(total - 1 - cut % (total - 1)).collect();
            let truncated = kept.join("\n");
            if !truncated.is_empty() {
                prop_assert!(Response::parse_text(&truncated).is_err());
            }
        }
    }
}
