//! Service layer for `graphbi`: a zero-dependency concurrent TCP server
//! and blocking client over the canonical wire grammar.
//!
//! The pieces, bottom-up:
//!
//! - [`protocol`] — the versioned line-oriented frame grammar (verbs,
//!   commit ops, `ERR`/`BUSY` frames). Request and response payloads are
//!   the canonical `graphbi::wire` text, so the server, CLI, testkit and
//!   docs all speak one grammar.
//! - [`queue`] — the admission-controlled bounded queue: the server's
//!   single backpressure point.
//! - [`recorder`] — the flight recorder: a bounded ring of completed
//!   request traces (head-sampled, forced for errors and slow requests)
//!   behind the `TRACE` / `SLOWLOG` / `TOP` introspection verbs.
//! - [`server`] — per-connection sessions pinning MVCC snapshots, and a
//!   batcher that coalesces requests *across connections* into
//!   `Session::evaluate_many` calls.
//! - [`client`] — a blocking client that caches the served universe for
//!   local QL compilation.
//!
//! ```no_run
//! use graphbi_serve::{Client, ServeConfig, ServeStore, Server};
//! # fn demo(store: graphbi::SharedStore) -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServeStore::Shared(store), "127.0.0.1:0", ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let answer = client.query_ql("[A,B,C]")?;
//! # drop(answer);
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod protocol;
pub mod queue;
pub mod recorder;
pub mod server;

pub use client::{Client, ClientError};
pub use recorder::{Recorder, RecorderConfig, RequestTrace, SlowlogExport};
pub use server::{ServeConfig, ServeStore, Server};
