//! The server's flight recorder: which requests get captured, where the
//! captures live, and how slow ones are exported.
//!
//! Policy (the tentpole's sampling contract):
//!
//! * Every request frame gets a monotone server-assigned **request id**
//!   ([`Recorder::next_rid`]) that is propagated on the wire.
//! * A deterministic head sampler ([`graphbi_obs::flight::Sampler`])
//!   picks 1/N requests for full capture; sampled `QUERY` requests run
//!   solo through the profiler so their [`Profile`] is exact.
//! * Capture is **forced** — regardless of the sampler — for requests
//!   that fail and for requests over the slow threshold, so the request
//!   you need to explain after the fact is always in the ring.
//! * Over-threshold requests additionally land in a second ring served
//!   by `SLOWLOG`, and (when configured) are appended as CRC-framed JSON
//!   lines through the [`Vfs`](graphbi_columnstore::Vfs) trait — the
//!   durable workload log.
//!
//! The unsampled fast path costs one atomic (rid) + one atomic (sampler)
//! + a comparison against the threshold; nothing is allocated and no ring
//! is touched.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use graphbi::{IoStats, Profile, PHASE_NAMES};
use graphbi_columnstore::VfsHandle;
use graphbi_obs::flight::{FlightRing, Sampler};
use graphbi_obs::{json, slowlog};

/// Where over-threshold entries are durably appended: one CRC-framed JSON
/// line per slow request, through the `Vfs` trait (same crash story as
/// the WAL — a torn tail is detected, never misread).
#[derive(Clone)]
pub struct SlowlogExport {
    /// The filesystem the log is appended through.
    pub vfs: VfsHandle,
    /// The log file path.
    pub path: PathBuf,
}

impl std::fmt::Debug for SlowlogExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowlogExport")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

/// One captured request: the envelope (who/when/how long/which snapshot)
/// plus the full [`Profile`]. For sampled queries and `PROFILE` requests
/// the profile is the exact measured one; forced captures (errors, slow
/// requests that the sampler skipped) carry a synthesized profile with
/// real I/O stats and total time but zeroed phase breakdown.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Server-assigned request id (the `TRACE` handle).
    pub rid: u64,
    /// Client correlation id, when the frame carried `id=<c>`.
    pub cid: Option<u64>,
    /// Verb that produced this trace (`"query"`, `"batch"`, `"commit"`,
    /// `"profile"`).
    pub verb: &'static str,
    /// The raw request text (first line for batches).
    pub request: String,
    /// Pinned base generation the request ran against.
    pub generation: u64,
    /// Pinned delta epoch the request ran against.
    pub epoch: u64,
    /// Time spent waiting in the admission queue, in nanoseconds.
    pub queue_wait_ns: u64,
    /// End-to-end server-side time, in nanoseconds.
    pub total_ns: u64,
    /// Size of the batch run this request executed in (1 = solo).
    pub batch: u64,
    /// 0 on success, else the stable [`graphbi::ErrorCode`] number.
    pub status: u16,
    /// The error message, when `status != 0`.
    pub error: Option<String>,
    /// The captured profile (exact or synthesized; see above).
    pub profile: Profile,
}

impl RequestTrace {
    /// True when this trace crossed the recorder's slow threshold.
    fn is_error(&self) -> bool {
        self.status != 0
    }

    /// Renders the envelope + profile as one JSON line — the `SLOWLOG`
    /// payload format and the exported slowlog-file record.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"rid\":{},\"verb\":{},\"request\":{}",
            self.rid,
            json::quote(self.verb),
            json::quote(&self.request)
        );
        if let Some(cid) = self.cid {
            let _ = write!(out, ",\"id\":{cid}");
        }
        let _ = write!(
            out,
            ",\"status\":{},\"generation\":{},\"epoch\":{},\"queue_wait_us\":{},\"total_us\":{},\"batch\":{}",
            self.status,
            self.generation,
            self.epoch,
            self.queue_wait_ns / 1_000,
            self.total_ns / 1_000,
            self.batch
        );
        if let Some(e) = &self.error {
            let _ = write!(out, ",\"error\":{}", json::quote(e));
        }
        let _ = write!(out, ",\"profile\":{}}}", self.profile.render_json());
        out
    }
}

/// Builds the synthesized [`Profile`] of a forced capture: zeroed phase
/// breakdown (nothing was traced), but the request's real I/O stats,
/// total time and match count — enough for `SLOWLOG` to answer "was it
/// the disk or the queue" even for requests the sampler skipped.
pub fn synthesized_profile(io: IoStats, total_ns: u64, matches: u64) -> Profile {
    Profile {
        backend: "serve",
        matches,
        estimated_matches: 0,
        total_ns,
        phases: PHASE_NAMES
            .iter()
            .map(|&name| graphbi::PhaseStat {
                name,
                wall_ns: 0,
                spans: 0,
            })
            .collect(),
        shard_spans: 0,
        stats: io,
        views_used: 0,
        residual_edges: 0,
        rewrite_ties: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        kernel_path: graphbi::kernels::path_name(),
    }
}

/// Recorder tuning, split out of `ServeConfig` so tests can build one
/// directly.
#[derive(Clone, Debug)]
pub struct RecorderConfig {
    /// Head-sampling period: capture 1 request in `sample_every`
    /// (0 = head sampling off; errors and slow requests still captured).
    pub sample_every: u64,
    /// Sampler phase offset (see [`Sampler`]).
    pub sample_seed: u64,
    /// Requests at or over this duration are captured, logged to the
    /// slowlog ring, and exported.
    pub slow_threshold: Duration,
    /// Flight-ring capacity; 0 disables the recorder entirely.
    pub flight_capacity: usize,
    /// Slowlog-ring capacity.
    pub slowlog_capacity: usize,
    /// Durable slowlog export, when configured.
    pub export: Option<SlowlogExport>,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            sample_every: 64,
            sample_seed: 0,
            slow_threshold: Duration::from_millis(100),
            flight_capacity: 1024,
            slowlog_capacity: 128,
            export: None,
        }
    }
}

/// The flight recorder: rid source, sampler, capture rings and export.
pub struct Recorder {
    rid: AtomicU64,
    sampler: Sampler,
    slow_threshold_ns: u64,
    ring: FlightRing<RequestTrace>,
    slow: FlightRing<RequestTrace>,
    /// Serializes exported appends (frame boundaries must not interleave).
    export: Option<Mutex<SlowlogExport>>,
    export_errors: AtomicU64,
}

impl Recorder {
    /// A recorder with the given policy.
    pub fn new(cfg: RecorderConfig) -> Recorder {
        Recorder {
            rid: AtomicU64::new(0),
            sampler: Sampler::new(cfg.sample_every, cfg.sample_seed),
            slow_threshold_ns: u64::try_from(cfg.slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            ring: FlightRing::new(cfg.flight_capacity),
            slow: FlightRing::new(if cfg.flight_capacity == 0 {
                0
            } else {
                cfg.slowlog_capacity
            }),
            export: cfg.export.map(Mutex::new),
            export_errors: AtomicU64::new(0),
        }
    }

    /// True when the recorder captures anything at all.
    pub fn enabled(&self) -> bool {
        self.ring.capacity() > 0
    }

    /// The next server-assigned request id (monotone from 1).
    pub fn next_rid(&self) -> u64 {
        self.rid.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Head-sampling decision for the next request. Always false when the
    /// recorder is disabled, so a capacity-0 server never pays the solo
    /// profiled execution.
    pub fn sample(&self) -> bool {
        self.enabled() && self.sampler.sample()
    }

    /// The configured slow threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// True when a request of `total_ns` must be captured regardless of
    /// the sampler.
    pub fn is_slow(&self, total_ns: u64) -> bool {
        total_ns >= self.slow_threshold_ns
    }

    /// Cheap post-execution predicate: true exactly when [`Recorder::observe`]
    /// would keep a trace with this outcome. The server checks it before
    /// building a [`RequestTrace`] at all, so the unsampled fast path pays
    /// two loads and a compare — not payload clones and a synthesized
    /// profile that `observe` would immediately drop.
    pub fn should_capture(&self, sampled: bool, total_ns: u64, error: bool) -> bool {
        self.enabled() && (sampled || error || self.is_slow(total_ns))
    }

    /// Observes one completed request. `sampled` is the decision made by
    /// [`Recorder::sample`] before execution; errors and slow requests
    /// are captured even when it was false.
    pub fn observe(&self, trace: RequestTrace, sampled: bool) {
        if !self.enabled() {
            return;
        }
        let slow = self.is_slow(trace.total_ns);
        if !(sampled || slow || trace.is_error()) {
            return;
        }
        if slow {
            self.slow.push(trace.rid, trace.clone());
            if let Some(export) = &self.export {
                let frame = slowlog::frame_line(&trace.render_json());
                let export = export.lock().expect("slowlog export lock");
                if export.vfs.append(&export.path, &frame).is_err() {
                    self.export_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.ring.push(trace.rid, trace);
    }

    /// The captured trace for `rid`, if still in the ring.
    pub fn get(&self, rid: u64) -> Option<RequestTrace> {
        self.ring.get(rid)
    }

    /// Up to `n` most recent over-threshold traces, newest first.
    pub fn recent_slow(&self, n: usize) -> Vec<RequestTrace> {
        self.slow.recent(n).into_iter().map(|(_, t)| t).collect()
    }

    /// Counters for `TOP`: (requests decided, traces captured, traces
    /// overwritten, slow traces captured, export failures).
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.sampler.calls(),
            self.ring.pushed(),
            self.ring.overwritten(),
            self.slow.pushed(),
            self.export_errors.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rid: u64, total_ns: u64, status: u16) -> RequestTrace {
        RequestTrace {
            rid,
            cid: None,
            verb: "query",
            request: "graph : 1".into(),
            generation: 0,
            epoch: 0,
            queue_wait_ns: 5_000,
            total_ns,
            batch: 1,
            status,
            error: (status != 0).then(|| "boom".into()),
            profile: synthesized_profile(IoStats::new(), total_ns, 0),
        }
    }

    fn recorder(sample_every: u64) -> Recorder {
        Recorder::new(RecorderConfig {
            sample_every,
            sample_seed: 0,
            slow_threshold: Duration::from_millis(10),
            flight_capacity: 8,
            slowlog_capacity: 4,
            export: None,
        })
    }

    #[test]
    fn sampled_requests_are_captured() {
        let r = recorder(2);
        assert!(r.sample()); // call 0: (0+0) % 2 == 0
        r.observe(trace(r.next_rid(), 1_000, 0), true);
        assert!(!r.sample());
        r.observe(trace(r.next_rid(), 1_000, 0), false);
        assert!(r.get(1).is_some());
        assert!(r.get(2).is_none(), "unsampled fast request not captured");
        assert!(r.recent_slow(10).is_empty());
    }

    #[test]
    fn slow_and_failing_requests_force_capture() {
        let r = recorder(0); // head sampling off entirely
        assert!(!r.sample());
        r.observe(trace(r.next_rid(), 50_000_000, 0), false); // 50ms ≥ 10ms
        r.observe(trace(r.next_rid(), 1_000, 101), false); // error
        r.observe(trace(r.next_rid(), 1_000, 0), false); // plain fast ok
        assert!(r.get(1).is_some(), "slow request forced into the ring");
        assert!(r.get(2).is_some(), "failing request forced into the ring");
        assert!(r.get(3).is_none());
        let slow = r.recent_slow(10);
        assert_eq!(slow.len(), 1, "only the over-threshold one is slowlogged");
        assert_eq!(slow[0].rid, 1);
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let r = Recorder::new(RecorderConfig {
            flight_capacity: 0,
            ..RecorderConfig::default()
        });
        assert!(!r.enabled());
        assert!(!r.sample(), "capacity 0 must never sample");
        r.observe(trace(r.next_rid(), u64::MAX, 500), false);
        assert!(r.get(1).is_none());
        assert!(r.recent_slow(10).is_empty());
    }

    #[test]
    fn trace_json_parses_and_nests_the_profile() {
        let mut t = trace(7, 42_000, 101);
        t.cid = Some(9);
        let doc = json::parse(&t.render_json()).expect("valid JSON");
        assert_eq!(doc.get("rid").and_then(json::Json::as_u64), Some(7));
        assert_eq!(doc.get("id").and_then(json::Json::as_u64), Some(9));
        assert_eq!(doc.get("status").and_then(json::Json::as_u64), Some(101));
        assert_eq!(doc.get("total_us").and_then(json::Json::as_u64), Some(42));
        assert_eq!(
            doc.get("error").and_then(json::Json::as_str),
            Some("boom")
        );
        let prof = doc.get("profile").expect("nested profile");
        assert_eq!(
            prof.get("backend").and_then(json::Json::as_str),
            Some("serve")
        );
    }
}
