//! A blocking client for the wire protocol.
//!
//! `Client::connect` performs the `HELLO` handshake and caches the
//! served [`Universe`], so QL statements can be compiled locally with
//! [`Client::query_ql`] and commit ops can name edges symbolically.
//! Every method sends one verb frame and parses exactly one status
//! frame; `BUSY` and `ERR` surface as typed [`ClientError`] variants
//! carrying the server's stable [`ErrorCode`] number.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use graphbi::{QueryRequest, Response, WireError};
use graphbi_columnstore::DeltaOp;
use graphbi_graph::Universe;

use crate::protocol::{self, PROTOCOL_VERSION};

/// What went wrong talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered something the protocol does not allow.
    Protocol(String),
    /// The server refused admission (backpressure) — retry later.
    Busy { code: u16, message: String },
    /// The server answered a typed error frame.
    Remote {
        code: u16,
        symbol: String,
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Busy { code, message } => write!(f, "busy ({code}): {message}"),
            ClientError::Remote {
                code,
                symbol,
                message,
            } => write!(f, "server error {code} {symbol}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Protocol(e.to_string())
    }
}

/// A parsed `OK` head: its `k=v` fields.
struct OkHead {
    generation: Option<u64>,
    epoch: Option<u64>,
    count: Option<usize>,
    lines: usize,
    /// The server-assigned request id (`id=<rid>`), usable with `TRACE`.
    id: Option<u64>,
}

/// One connection to a `graphbi` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    universe: Universe,
    generation: u64,
    epoch: u64,
    last_rid: Option<u64>,
}

impl Client {
    /// Connects and completes the `HELLO` handshake, caching the served
    /// universe and the session's pinned `(generation, epoch)`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            universe: Universe::default(),
            generation: 0,
            epoch: 0,
            last_rid: None,
        };
        writeln!(client.writer, "HELLO {PROTOCOL_VERSION}")?;
        client.writer.flush()?;
        let head = client.read_head()?;
        let body = client.read_lines(head.lines)?;
        client.universe = Universe::parse_text(&body)
            .map_err(|e| ClientError::Protocol(format!("bad universe in HELLO reply: {e}")))?;
        client.note_pin(&head);
        Ok(client)
    }

    /// The universe this server serves (cached from `HELLO`).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The session's pinned generation (meaningful on MVCC backends).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The session's pinned epoch (meaningful on MVCC backends).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The server-assigned id of the most recent request (from the reply
    /// head's `id=` field). Pass it to [`Client::trace`] to replay the
    /// request's captured profile — errors and slow requests are always
    /// captured, other requests only when head-sampled.
    pub fn last_request_id(&self) -> Option<u64> {
        self.last_rid
    }

    fn note_pin(&mut self, head: &OkHead) {
        if let Some(g) = head.generation {
            self.generation = g;
        }
        if let Some(e) = head.epoch {
            self.epoch = e;
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-response".into(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads one status frame; `OK` parses into a head, `ERR`/`BUSY`
    /// become typed errors.
    fn read_head(&mut self) -> Result<OkHead, ClientError> {
        let line = self.read_line()?;
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("OK") => {
                let mut head = OkHead {
                    generation: None,
                    epoch: None,
                    count: None,
                    lines: 0,
                    id: None,
                };
                let mut saw_lines = false;
                for tok in toks {
                    let Some((k, v)) = tok.split_once('=') else {
                        // Bare token — the version echo in the HELLO reply.
                        continue;
                    };
                    let bad =
                        || ClientError::Protocol(format!("bad head field {tok:?} in {line:?}"));
                    match k {
                        "generation" => head.generation = Some(v.parse().map_err(|_| bad())?),
                        "epoch" => head.epoch = Some(v.parse().map_err(|_| bad())?),
                        "count" => head.count = Some(v.parse().map_err(|_| bad())?),
                        "id" => head.id = Some(v.parse().map_err(|_| bad())?),
                        "lines" => {
                            head.lines = v.parse().map_err(|_| bad())?;
                            saw_lines = true;
                        }
                        _ => {}
                    }
                }
                if !saw_lines {
                    return Err(ClientError::Protocol(format!(
                        "OK head without lines= field: {line:?}"
                    )));
                }
                if head.id.is_some() {
                    self.last_rid = head.id;
                }
                Ok(head)
            }
            Some("BUSY") => {
                let code: u16 = toks.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                let message = toks.collect::<Vec<_>>().join(" ");
                Err(ClientError::Busy { code, message })
            }
            Some("ERR") => {
                let code: u16 = toks.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                let symbol = toks.next().unwrap_or("").to_owned();
                let mut words: Vec<&str> = toks.collect();
                // ERR frames carry the request id as a trailing token so
                // the failing request can be TRACEd; strip it from the
                // human-facing message.
                if let Some(last) = words.last() {
                    if let Some(rid) = last
                        .strip_prefix("id=")
                        .and_then(|v| v.parse::<u64>().ok())
                    {
                        self.last_rid = Some(rid);
                        words.pop();
                    }
                }
                let message = words.join(" ");
                Err(ClientError::Remote {
                    code,
                    symbol,
                    message,
                })
            }
            _ => Err(ClientError::Protocol(format!(
                "unrecognized status frame {line:?}"
            ))),
        }
    }

    /// Reads `n` payload lines into one newline-terminated string.
    fn read_lines(&mut self, n: usize) -> Result<String, ClientError> {
        let mut out = String::new();
        for _ in 0..n {
            out.push_str(&self.read_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Executes one request on the session's pinned state.
    pub fn query(&mut self, request: &QueryRequest) -> Result<Response, ClientError> {
        writeln!(self.writer, "QUERY {}", request.to_text())?;
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(Response::parse_text(&body)?)
    }

    /// Executes one request tagged with a client correlation id. The id
    /// is echoed in the request's captured trace (`SLOWLOG` JSON), so a
    /// client can find its own requests in a shared server's slow log.
    pub fn query_with_id(
        &mut self,
        request: &QueryRequest,
        id: u64,
    ) -> Result<Response, ClientError> {
        writeln!(self.writer, "QUERY id={id} {}", request.to_text())?;
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(Response::parse_text(&body)?)
    }

    /// Compiles a QL statement against the cached universe and executes
    /// it — the same grammar `graphbi query` accepts.
    pub fn query_ql(&mut self, text: &str) -> Result<Response, ClientError> {
        let request = graphbi::ql::request_from_text(text, &self.universe)
            .map_err(|e| ClientError::Protocol(format!("ql: {e}")))?;
        self.query(&request)
    }

    /// Executes many requests in one frame; the server may coalesce them
    /// (and concurrent requests from other connections) into shared
    /// batches. Answers come back in request order.
    pub fn batch(&mut self, requests: &[QueryRequest]) -> Result<Vec<Response>, ClientError> {
        writeln!(self.writer, "BATCH {}", requests.len())?;
        for r in requests {
            writeln!(self.writer, "{}", r.to_text())?;
        }
        self.writer.flush()?;
        let head = self.read_head()?;
        if head.count != Some(requests.len()) {
            return Err(ClientError::Protocol(format!(
                "BATCH answered count={:?}, sent {}",
                head.count,
                requests.len()
            )));
        }
        let body = self.read_lines(head.lines)?;
        let mut lines = body.lines();
        let mut lineno = 0usize;
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            out.push(Response::read_block(&mut lines, &mut lineno)?);
        }
        Ok(out)
    }

    /// Commits ops atomically and re-pins the session past the commit
    /// (read-your-writes).
    pub fn commit(&mut self, ops: &[DeltaOp]) -> Result<(u64, u64), ClientError> {
        writeln!(self.writer, "COMMIT {}", ops.len())?;
        for op in ops {
            writeln!(self.writer, "{}", protocol::op_to_text(op))?;
        }
        self.writer.flush()?;
        let head = self.read_head()?;
        self.note_pin(&head);
        Ok((self.generation, self.epoch))
    }

    /// Profiles one request on the server; returns the profile JSON.
    pub fn profile(&mut self, request: &QueryRequest) -> Result<String, ClientError> {
        writeln!(self.writer, "PROFILE {}", request.to_text())?;
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(body.trim_end().to_owned())
    }

    /// Scrapes the server's metrics registry (Prometheus text format).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        writeln!(self.writer, "METRICS")?;
        self.writer.flush()?;
        let head = self.read_head()?;
        self.read_lines(head.lines)
    }

    /// Replays the captured trace of an earlier request as profile JSON —
    /// the exact rendering `PROFILE` would have produced.
    pub fn trace(&mut self, rid: u64) -> Result<String, ClientError> {
        writeln!(self.writer, "TRACE {rid}")?;
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(body.trim_end().to_owned())
    }

    /// Fetches the most recent over-threshold requests, newest first, as
    /// one JSON line per entry.
    pub fn slowlog(&mut self, n: Option<usize>) -> Result<Vec<String>, ClientError> {
        match n {
            Some(n) => writeln!(self.writer, "SLOWLOG {n}")?,
            None => writeln!(self.writer, "SLOWLOG")?,
        }
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(body.lines().map(str::to_owned).collect())
    }

    /// Fetches the live server snapshot (`TOP`) as one JSON line.
    pub fn top(&mut self) -> Result<String, ClientError> {
        writeln!(self.writer, "TOP")?;
        self.writer.flush()?;
        let head = self.read_head()?;
        let body = self.read_lines(head.lines)?;
        Ok(body.trim_end().to_owned())
    }

    /// Re-pins the session to the store's latest state.
    pub fn refresh(&mut self) -> Result<(u64, u64), ClientError> {
        writeln!(self.writer, "REFRESH")?;
        self.writer.flush()?;
        let head = self.read_head()?;
        self.note_pin(&head);
        Ok((self.generation, self.epoch))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> Result<(), ClientError> {
        writeln!(self.writer, "QUIT")?;
        self.writer.flush()?;
        let _ = self.read_head()?;
        Ok(())
    }

    /// Sends a raw frame line and returns the raw status line — the
    /// escape hatch `graphbi connect` and tests use to poke the protocol
    /// directly (including malformed frames).
    pub fn send_raw(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_line()
    }
}
