//! The concurrent TCP server: per-connection sessions over a shared
//! store, with cross-connection request batching.
//!
//! # Architecture
//!
//! One thread accepts connections; each connection gets a handler thread
//! that parses frames and *enqueues* query jobs rather than executing
//! them. A single batcher thread drains the [`AdmissionQueue`] in runs of
//! jobs pinned to the same store state and answers each run with **one**
//! [`Session::evaluate_many`] call — so requests arriving concurrently on
//! different connections share duplicate-elimination, column fetches and
//! the worker pool exactly like an in-process batch (PR 2's scaling
//! trick, now across the network).
//!
//! # Sessions and snapshots
//!
//! A connection pins its view of the store at `HELLO` time. Over an
//! [`MvccStore`] that is a real `(generation, epoch)` snapshot: answers
//! stay stable while writers commit, until the connection `REFRESH`es or
//! commits itself (read-your-writes). Batching respects pins — only jobs
//! on the same `(generation, epoch)` coalesce, so a batch can never mix
//! two points in time.
//!
//! # Backpressure state machine
//!
//! ```text
//!             offer(job, admission_timeout)
//! CLIENT ──▶ queue has room? ──yes──▶ ADMITTED ──▶ batched ──▶ OK …
//!                │ no
//!                ▼ wait ≤ admission_timeout
//!            room appeared? ──yes──▶ ADMITTED
//!                │ no (timeout)
//!                ▼
//!            BUSY 210 … (typed, within the timeout; nothing buffered)
//! ```
//!
//! Memory is bounded end-to-end: frame lines are capped
//! ([`MAX_LINE_BYTES`]), batch counts are capped ([`MAX_BATCH`]), and the
//! queue holds at most `queue_depth` jobs — overload degrades into
//! prompt, typed `BUSY` responses, never into growth.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphbi::{
    Coded, ErrorCode, MvccStore, Profile, QueryRequest, Response, Session, SessionError,
    SharedStore, Snapshot,
};
use graphbi_columnstore::{DeltaOp, IoStats};
use graphbi_obs::{json, Counter, Histogram};

use crate::protocol::{self, Verb, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::queue::{AdmissionQueue, OfferError};
use crate::recorder::{
    synthesized_profile, Recorder, RecorderConfig, RequestTrace, SlowlogExport,
};

/// `SLOWLOG` entry count when the client does not ask for one.
const DEFAULT_SLOWLOG: usize = 16;

fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn response_matches(resp: &Response) -> u64 {
    match resp {
        Response::Records(r) => r.records.len() as u64,
        Response::Matches(b) => b.len(),
        Response::Aggregates(r) => r.records.len() as u64,
    }
}

/// Server tuning knobs. The defaults favour throughput under bursty
/// load; tests tighten them to force the backpressure paths.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission queue depth: jobs waiting for the batcher.
    pub queue_depth: usize,
    /// How long an arriving request may wait for queue space before the
    /// server answers `BUSY`.
    pub admission_timeout: Duration,
    /// Largest run of jobs coalesced into one `evaluate_many` call.
    pub batch_max: usize,
    /// Artificial stall before each batch executes — `0` in production;
    /// tests and benchmarks raise it to make queueing deterministic.
    pub batch_delay: Duration,
    /// Socket read poll interval; bounds how fast handler threads notice
    /// shutdown.
    pub read_timeout: Duration,
    /// When true the server installs a span collector on its threads, so
    /// per-connection `serve.request` / `serve.batch` spans land in a
    /// tracer reachable via [`Server::collector`]. Off by default:
    /// a collector accumulates spans without bound, which a long-running
    /// server must not.
    pub trace: bool,
    /// Flight-recorder head sampling: capture 1 request in `sample_every`
    /// (0 = only errors and slow requests are captured).
    pub sample_every: u64,
    /// Sampler phase offset (several servers behind one balancer should
    /// not all sample the same client's requests).
    pub sample_seed: u64,
    /// Requests at or over this duration are captured, `SLOWLOG`-visible,
    /// and exported when a slowlog file is configured.
    pub slow_threshold: Duration,
    /// Flight-ring capacity — the recorder's hard memory bound. 0
    /// disables the recorder entirely (benchmark baseline).
    pub flight_capacity: usize,
    /// Slowlog-ring capacity (`SLOWLOG` can replay at most this many).
    pub slowlog_capacity: usize,
    /// When set, over-threshold requests are appended to this file as
    /// CRC-framed JSON lines through the `Vfs` trait.
    pub slowlog_export: Option<SlowlogExport>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 256,
            admission_timeout: Duration::from_millis(100),
            batch_max: 64,
            batch_delay: Duration::ZERO,
            read_timeout: Duration::from_millis(100),
            trace: false,
            sample_every: 64,
            sample_seed: 0,
            slow_threshold: Duration::from_millis(100),
            flight_capacity: 1024,
            slowlog_capacity: 128,
            slowlog_export: None,
        }
    }
}

impl ServeConfig {
    fn recorder_config(&self) -> RecorderConfig {
        RecorderConfig {
            sample_every: self.sample_every,
            sample_seed: self.sample_seed,
            slow_threshold: self.slow_threshold,
            flight_capacity: self.flight_capacity,
            slowlog_capacity: self.slowlog_capacity,
            export: self.slowlog_export.clone(),
        }
    }
}

/// The store a server fronts: lock-shared or MVCC.
#[derive(Clone)]
pub enum ServeStore {
    /// Reader-writer lock over one [`graphbi::GraphStore`]; sessions pin
    /// nothing (every query sees the latest state).
    Shared(SharedStore),
    /// MVCC store; sessions pin `(generation, epoch)` snapshots.
    Mvcc(Arc<MvccStore>),
}

/// A connection's pinned execution state.
#[derive(Clone)]
enum Pinned {
    Shared(SharedStore),
    Mvcc(Arc<Snapshot>),
}

impl Pinned {
    /// Jobs coalesce only within one key: the pinned `(generation,
    /// epoch)`. Shared stores have a single timeline, so every job
    /// shares key `(0, 0)` — `SharedStore::evaluate_many` still answers
    /// the whole batch under one read lock.
    fn batch_key(&self) -> (u64, u64) {
        match self {
            Pinned::Shared(_) => (0, 0),
            Pinned::Mvcc(s) => (s.generation(), s.epoch()),
        }
    }

    fn info(&self) -> (u64, u64) {
        self.batch_key()
    }

    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        match self {
            Pinned::Shared(s) => s.execute(request),
            Pinned::Mvcc(s) => s.execute(request),
        }
    }

    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        match self {
            Pinned::Shared(s) => s.evaluate_many(requests),
            Pinned::Mvcc(s) => s.evaluate_many(requests),
        }
    }

    fn profile(
        &self,
        request: &QueryRequest,
    ) -> Result<(Response, graphbi::Profile), SessionError> {
        match self {
            Pinned::Shared(s) => s.profile(request),
            Pinned::Mvcc(s) => s.profile(request),
        }
    }
}

impl ServeStore {
    fn pin(&self) -> Pinned {
        match self {
            ServeStore::Shared(s) => Pinned::Shared(s.clone()),
            ServeStore::Mvcc(m) => Pinned::Mvcc(Arc::new(m.snapshot())),
        }
    }

    fn universe_text(&self) -> String {
        match self {
            ServeStore::Shared(s) => s.read(|g| g.universe().to_text()),
            ServeStore::Mvcc(m) => m.snapshot().universe().to_text(),
        }
    }

    fn edge_count(&self) -> usize {
        match self {
            ServeStore::Shared(s) => s.read(|g| g.universe().edge_count()),
            ServeStore::Mvcc(m) => m.snapshot().universe().edge_count(),
        }
    }

    /// Applies a commit atomically (one write lock / one MVCC commit).
    fn commit(&self, ops: &[DeltaOp]) -> Result<(), (ErrorCode, String)> {
        let edges = self.edge_count() as u32;
        for op in ops {
            let rec = match op {
                DeltaOp::Insert(r) => r,
                DeltaOp::Update(_, r) => r,
            };
            if let Some((e, _)) = rec.edges().iter().find(|(e, _)| e.0 >= edges) {
                return Err((
                    ErrorCode::UnknownEdge,
                    format!("edge id {} is not in the universe (< {edges})", e.0),
                ));
            }
        }
        match self {
            ServeStore::Shared(s) => {
                if ops.iter().any(|op| matches!(op, DeltaOp::Update(..))) {
                    return Err((
                        ErrorCode::Unsupported,
                        "update ops need an MVCC store (serve --mvcc)".into(),
                    ));
                }
                s.write(|g| {
                    for op in ops {
                        if let DeltaOp::Insert(rec) = op {
                            g.append_record(rec);
                        }
                    }
                });
                Ok(())
            }
            ServeStore::Mvcc(m) => match m.commit(ops) {
                Ok(_epoch) => Ok(()),
                Err(e) => Err((e.code(), e.to_string())),
            },
        }
    }
}

/// What the batcher hands back per request: the answer plus the
/// observability facts the flight recorder needs (measured queue wait,
/// run size, and — for sampled singletons — the exact profile).
struct JobOutcome {
    response: Response,
    io: IoStats,
    /// Nanoseconds the job waited in the admission queue.
    wait_ns: u64,
    /// Size of the run this job executed in (1 = solo).
    batch: u64,
    /// Exact profile, present only for sampled singleton runs.
    profile: Option<Profile>,
}

/// An indexed answer on its way back to the handler that enqueued it.
type Reply = (usize, Result<JobOutcome, SessionError>);

/// One queued request: where it runs, where its answer goes.
struct Job {
    pinned: Pinned,
    request: QueryRequest,
    index: usize,
    /// Head-sampled: the batcher runs this job solo through the profiler
    /// so its captured trace is exact.
    sampled: bool,
    reply: mpsc::Sender<Reply>,
    enqueued: Instant,
}

/// Metric handles the hot paths record through — fetched once at server
/// start so no request pays the registry's name-lookup lock.
struct ServeMetrics {
    requests: Arc<Counter>,
    commits: Arc<Counter>,
    read_bytes: Arc<Counter>,
    write_bytes: Arc<Counter>,
    admission_wait_us: Arc<Histogram>,
    verb_query_us: Arc<Histogram>,
    verb_batch_us: Arc<Histogram>,
    verb_commit_us: Arc<Histogram>,
    verb_profile_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let reg = graphbi_obs::global();
        ServeMetrics {
            requests: reg.counter("graphbi_serve_requests_total"),
            commits: reg.counter("graphbi_serve_commits_total"),
            read_bytes: reg.counter("graphbi_serve_read_bytes_total"),
            write_bytes: reg.counter("graphbi_serve_write_bytes_total"),
            admission_wait_us: reg.histogram("graphbi_serve_admission_wait_us"),
            verb_query_us: reg.histogram("graphbi_serve_verb_query_us"),
            verb_batch_us: reg.histogram("graphbi_serve_verb_batch_us"),
            verb_commit_us: reg.histogram("graphbi_serve_verb_commit_us"),
            verb_profile_us: reg.histogram("graphbi_serve_verb_profile_us"),
        }
    }
}

struct Ctx {
    store: ServeStore,
    cfg: ServeConfig,
    queue: AdmissionQueue<Job>,
    shutdown: AtomicBool,
    collector: Option<Arc<graphbi_obs::Collector>>,
    /// The universe text served by `HELLO`, rendered once.
    hello_text: String,
    recorder: Recorder,
    metrics: ServeMetrics,
}

/// A running server; dropping it shuts the server down.
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    pub fn start(store: ServeStore, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // 0 = scalar, 1 = simd; resolved once so dashboards can tell which
        // kernel path this process actually runs.
        graphbi_obs::global()
            .gauge("graphbi_kernel_path")
            .set(i64::from(matches!(
                graphbi::kernels::active(),
                graphbi::kernels::KernelPath::Simd
            )));
        let hello_text = store.universe_text();
        let collector = cfg.trace.then(|| Arc::new(graphbi_obs::Collector::new()));
        let recorder = Recorder::new(cfg.recorder_config());
        let ctx = Arc::new(Ctx {
            store,
            queue: AdmissionQueue::new(cfg.queue_depth),
            cfg,
            shutdown: AtomicBool::new(false),
            collector,
            hello_text,
            recorder,
            metrics: ServeMetrics::new(),
        });
        let batcher = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || batcher_loop(&ctx))
        };
        let accept = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || accept_loop(listener, &ctx))
        };
        Ok(Server {
            addr: local,
            ctx,
            accept: Some(accept),
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves the port when started with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The span collector, when started with [`ServeConfig::trace`].
    pub fn collector(&self) -> Option<&Arc<graphbi_obs::Collector>> {
        self.ctx.collector.as_ref()
    }

    /// The flight recorder (tests inspect capture policy through this).
    pub fn recorder(&self) -> &Recorder {
        &self.ctx.recorder
    }

    /// Stops accepting, drains every queued job (each still gets its
    /// response), and joins all threads.
    pub fn shutdown(&mut self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        self.ctx.queue.close();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops (`graphbi serve` runs forever on
    /// this).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(ctx);
        handlers.push(std::thread::spawn(move || {
            let _tracing = ctx.collector.as_ref().map(graphbi_obs::install);
            graphbi_obs::global()
                .counter("graphbi_serve_connections_total")
                .inc();
            graphbi_obs::global()
                .gauge("graphbi_serve_connections")
                .add(1);
            let peer = handle_connection(stream, &ctx);
            graphbi_obs::global()
                .gauge("graphbi_serve_connections")
                .add(-1);
            drop(peer);
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// How one frame-line read ended.
enum FrameLine {
    Line(String),
    Eof,
    TooLong,
}

/// Reads one `\n`-terminated line with a hard length cap, polling the
/// socket's read timeout so shutdown is noticed promptly. A partial line
/// at EOF (or shutdown) is discarded — it was never a complete frame.
fn read_frame_line(reader: &mut BufReader<TcpStream>, ctx: &Ctx) -> io::Result<FrameLine> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return Ok(FrameLine::Eof);
        }
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(FrameLine::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                out.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                ctx.metrics.read_bytes.add(pos as u64 + 1);
                if out.len() > MAX_LINE_BYTES {
                    return Ok(FrameLine::TooLong);
                }
                return Ok(FrameLine::Line(String::from_utf8_lossy(&out).into_owned()));
            }
            None => {
                let n = buf.len();
                out.extend_from_slice(buf);
                reader.consume(n);
                ctx.metrics.read_bytes.add(n as u64);
                if out.len() > MAX_LINE_BYTES {
                    return Ok(FrameLine::TooLong);
                }
            }
        }
    }
}

/// A write wrapper feeding the served-bytes counter — the egress half of
/// the per-connection byte accounting.
struct CountingWriter {
    inner: TcpStream,
    bytes: Arc<Counter>,
}

impl io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// What a dispatch attempt answers when it cannot produce results.
enum Refusal {
    Busy(String),
    Fail(ErrorCode, String),
}

/// Enqueues `requests` for the batcher and collects the answers in
/// request order. The whole group fails with the first request error —
/// answers already computed for it are discarded, never half-reported.
/// A `sampled` singleton is marked so the batcher runs it solo through
/// the profiler.
fn dispatch(
    ctx: &Ctx,
    pinned: &Pinned,
    requests: Vec<QueryRequest>,
    sampled: bool,
) -> Result<Vec<JobOutcome>, Refusal> {
    let n = requests.len();
    let (tx, rx) = mpsc::channel();
    for (index, request) in requests.into_iter().enumerate() {
        let job = Job {
            pinned: pinned.clone(),
            request,
            index,
            sampled: sampled && n == 1,
            reply: tx.clone(),
            enqueued: Instant::now(),
        };
        let offered = Instant::now();
        let admitted = ctx.queue.offer(job, ctx.cfg.admission_timeout);
        ctx.metrics
            .admission_wait_us
            .record(dur_us(offered.elapsed()));
        match admitted {
            Ok(()) => {}
            Err(OfferError::Full(_)) => {
                graphbi_obs::global()
                    .counter("graphbi_serve_busy_total")
                    .inc();
                return Err(Refusal::Busy(format!(
                    "admission queue full ({} deep) for {:?}",
                    ctx.cfg.queue_depth, ctx.cfg.admission_timeout
                )));
            }
            Err(OfferError::Closed(_)) => {
                return Err(Refusal::Fail(ErrorCode::Io, "server shutting down".into()))
            }
        }
    }
    drop(tx);
    let mut results: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok((i, Ok(r))) => results[i] = Some(r),
            Ok((_, Err(e))) => return Err(Refusal::Fail(e.code(), e.to_string())),
            Err(_) => {
                return Err(Refusal::Fail(
                    ErrorCode::Internal,
                    "batcher reply lost".into(),
                ))
            }
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every index answered"))
        .collect())
}

/// Records a failed request into the flight recorder — failure capture is
/// forced, so the request that errored is always `TRACE`-able afterwards.
#[allow(clippy::too_many_arguments)]
fn record_failure(
    ctx: &Ctx,
    rid: u64,
    cid: Option<u64>,
    verb: &'static str,
    request: &str,
    pinned: &Pinned,
    started: Instant,
    code: ErrorCode,
    message: &str,
) {
    let (generation, epoch) = pinned.info();
    let total_ns = dur_ns(started.elapsed());
    ctx.recorder.observe(
        RequestTrace {
            rid,
            cid,
            verb,
            request: request.to_owned(),
            generation,
            epoch,
            queue_wait_ns: 0,
            total_ns,
            batch: 1,
            status: code.as_u16(),
            error: Some(message.to_owned()),
            profile: synthesized_profile(IoStats::new(), total_ns, 0),
        },
        false,
    );
}

/// Answers a [`Refusal`] on the wire and records it into the recorder.
#[allow(clippy::too_many_arguments)]
fn refuse(
    writer: &mut CountingWriter,
    ctx: &Ctx,
    rid: u64,
    cid: Option<u64>,
    verb: &'static str,
    request: &str,
    pinned: &Pinned,
    started: Instant,
    refusal: Refusal,
) -> io::Result<()> {
    match refusal {
        Refusal::Busy(msg) => {
            record_failure(
                ctx, rid, cid, verb, request, pinned, started, ErrorCode::Busy, &msg,
            );
            writeln!(writer, "{}", protocol::render_busy(&msg))
        }
        Refusal::Fail(code, msg) => {
            record_failure(ctx, rid, cid, verb, request, pinned, started, code, &msg);
            writeln!(writer, "{}", protocol::render_err_id(code, &msg, rid))
        }
    }
}

/// Renders the `TOP` live snapshot as one JSON line: connection and queue
/// state, per-verb latency quantiles, MVCC position, compaction and byte
/// counters, and the recorder's own health.
fn render_top(ctx: &Ctx) -> String {
    use std::fmt::Write as _;
    let snap = graphbi_obs::global().snapshot();
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let g = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
    let empty = graphbi_obs::HistSnapshot::default();
    let h = |name: &str| snap.histograms.get(name).unwrap_or(&empty);
    let (generation, epoch) = match &ctx.store {
        ServeStore::Shared(_) => (0, 0),
        ServeStore::Mvcc(m) => (m.generation(), m.epoch()),
    };
    let (decided, captured, overwritten, slow, export_errors) = ctx.recorder.stats();
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"connections\":{},\"queue_depth\":{},\"inflight_batch\":{}",
        g("graphbi_serve_connections"),
        ctx.queue.len(),
        g("graphbi_serve_inflight_batch")
    );
    let _ = write!(out, ",\"generation\":{generation},\"epoch\":{epoch}");
    let _ = write!(
        out,
        ",\"requests_total\":{},\"commits_total\":{},\"busy_total\":{}",
        c("graphbi_serve_requests_total"),
        c("graphbi_serve_commits_total"),
        c("graphbi_serve_busy_total")
    );
    let _ = write!(
        out,
        ",\"batches_total\":{},\"batched_requests_total\":{}",
        c("graphbi_serve_batches_total"),
        c("graphbi_serve_batched_requests_total")
    );
    let _ = write!(
        out,
        ",\"read_bytes_total\":{},\"write_bytes_total\":{}",
        c("graphbi_serve_read_bytes_total"),
        c("graphbi_serve_write_bytes_total")
    );
    let compaction_failures: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("graphbi_compaction_failures_"))
        .map(|(_, v)| v)
        .sum();
    let _ = write!(
        out,
        ",\"wal_commits_total\":{},\"compactions_total\":{},\"compaction_failures_total\":{compaction_failures}",
        c("graphbi_wal_commits_total"),
        c("graphbi_compactions_total")
    );
    let _ = write!(
        out,
        ",\"kernel\":{}",
        json::quote(if g("graphbi_kernel_path") == 1 {
            "simd"
        } else {
            "scalar"
        })
    );
    out.push_str(",\"verbs\":{");
    for (i, (name, metric)) in [
        ("query", "graphbi_serve_verb_query_us"),
        ("batch", "graphbi_serve_verb_batch_us"),
        ("commit", "graphbi_serve_verb_commit_us"),
        ("profile", "graphbi_serve_verb_profile_us"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let hs = h(metric);
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
            json::quote(name),
            hs.count,
            hs.quantile(0.5),
            hs.quantile(0.99)
        );
    }
    out.push('}');
    let qw = h("graphbi_serve_queue_wait_us");
    let aw = h("graphbi_serve_admission_wait_us");
    let _ = write!(
        out,
        ",\"queue_wait_us\":{{\"p50\":{},\"p99\":{}}},\"admission_wait_us\":{{\"p50\":{},\"p99\":{}}}",
        qw.quantile(0.5),
        qw.quantile(0.99),
        aw.quantile(0.5),
        aw.quantile(0.99)
    );
    let bs = h("graphbi_serve_batch_size");
    let _ = write!(
        out,
        ",\"batch_size\":{{\"count\":{},\"mean\":{:.2}}}",
        bs.count,
        bs.mean()
    );
    let _ = write!(
        out,
        ",\"recorder\":{{\"requests\":{decided},\"captured\":{captured},\"overwritten\":{overwritten},\
         \"slow\":{slow},\"export_errors\":{export_errors},\"sample_every\":{},\"slow_threshold_ms\":{}}}",
        ctx.cfg.sample_every,
        ctx.cfg.slow_threshold.as_millis()
    );
    out.push('}');
    out
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = CountingWriter {
        inner: stream,
        bytes: Arc::clone(&ctx.metrics.write_bytes),
    };

    // Handshake: the first frame must be HELLO with our version.
    let first = match read_frame_line(&mut reader, ctx)? {
        FrameLine::Line(l) => l,
        FrameLine::Eof => return Ok(()),
        FrameLine::TooLong => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(ErrorCode::Malformed, "line exceeds frame cap")
            )?;
            return Ok(());
        }
    };
    match protocol::parse_verb(&first) {
        Ok(Verb::Hello(v)) if v == PROTOCOL_VERSION => {}
        Ok(Verb::Hello(v)) => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(
                    ErrorCode::Unsupported,
                    &format!("protocol {v:?}; this server speaks {PROTOCOL_VERSION}")
                )
            )?;
            return Ok(());
        }
        Ok(_) | Err(_) => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(ErrorCode::Malformed, "first frame must be HELLO <version>")
            )?;
            return Ok(());
        }
    }
    let mut pinned = ctx.store.pin();
    let (gen, epoch) = pinned.info();
    let hello_rid = ctx.recorder.next_rid();
    write!(
        writer,
        "OK {PROTOCOL_VERSION} generation={gen} epoch={epoch} lines={} id={hello_rid}\n{}",
        ctx.hello_text.lines().count(),
        ctx.hello_text
    )?;
    writer.flush()?;

    loop {
        let line = match read_frame_line(&mut reader, ctx)? {
            FrameLine::Line(l) => l,
            FrameLine::Eof => return Ok(()),
            FrameLine::TooLong => {
                // The stream can no longer be framed; answer and close.
                let rid = ctx.recorder.next_rid();
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err_id(ErrorCode::Malformed, "line exceeds frame cap", rid)
                )?;
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let verb = match protocol::parse_verb(&line) {
            Ok(v) => v,
            Err(e) => {
                let rid = ctx.recorder.next_rid();
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err_id(ErrorCode::Malformed, &e.to_string(), rid)
                )?;
                writer.flush()?;
                continue;
            }
        };
        // Every parsed request gets a server-assigned id, echoed on the
        // reply head so a client can TRACE it later.
        let rid = ctx.recorder.next_rid();
        let started = Instant::now();
        let mut sp = graphbi_obs::span("serve.request");
        match verb {
            Verb::Hello(_) => {
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err_id(ErrorCode::Malformed, "HELLO already exchanged", rid)
                )?;
            }
            Verb::Query { cid, payload } => {
                sp.attr("requests", 1);
                match QueryRequest::parse_text(&payload) {
                    Err(e) => {
                        writeln!(
                            writer,
                            "{}",
                            protocol::render_err_id(ErrorCode::Malformed, &e.to_string(), rid)
                        )?;
                        record_failure(
                            ctx,
                            rid,
                            cid,
                            "query",
                            &payload,
                            &pinned,
                            started,
                            ErrorCode::Malformed,
                            &e.to_string(),
                        );
                    }
                    Ok(req) => {
                        ctx.metrics.requests.inc();
                        let sampled = ctx.recorder.sample();
                        match dispatch(ctx, &pinned, vec![req], sampled) {
                            Ok(mut outcomes) => {
                                let out = outcomes.pop().expect("one request, one outcome");
                                let (gen, epoch) = pinned.info();
                                write!(
                                    writer,
                                    "OK generation={gen} epoch={epoch} lines={} id={rid}\n{}",
                                    out.response.line_count(),
                                    out.response.to_text()
                                )?;
                                let total_ns = dur_ns(started.elapsed());
                                // Skip trace assembly entirely unless the
                                // recorder will keep it — the unsampled
                                // fast path must not pay for clones and a
                                // synthesized profile headed for the floor.
                                if ctx.recorder.should_capture(sampled, total_ns, false) {
                                    let matches = response_matches(&out.response);
                                    let profile = out.profile.unwrap_or_else(|| {
                                        synthesized_profile(out.io, total_ns, matches)
                                    });
                                    ctx.recorder.observe(
                                        RequestTrace {
                                            rid,
                                            cid,
                                            verb: "query",
                                            request: payload,
                                            generation: gen,
                                            epoch,
                                            queue_wait_ns: out.wait_ns,
                                            total_ns,
                                            batch: out.batch,
                                            status: 0,
                                            error: None,
                                            profile,
                                        },
                                        sampled,
                                    );
                                }
                            }
                            Err(r) => refuse(
                                &mut writer,
                                ctx,
                                rid,
                                cid,
                                "query",
                                &payload,
                                &pinned,
                                started,
                                r,
                            )?,
                        }
                    }
                }
                ctx.metrics.verb_query_us.record(dur_us(started.elapsed()));
            }
            Verb::Batch { count: k, cid } => {
                sp.attr("requests", k as u64);
                // Consume all k payload lines before parsing, so a bad
                // request never desynchronizes framing.
                let mut raw = Vec::with_capacity(k);
                for _ in 0..k {
                    match read_frame_line(&mut reader, ctx)? {
                        FrameLine::Line(l) => raw.push(l),
                        FrameLine::Eof => return Ok(()),
                        FrameLine::TooLong => {
                            writeln!(
                                writer,
                                "{}",
                                protocol::render_err_id(
                                    ErrorCode::Malformed,
                                    "line exceeds frame cap",
                                    rid
                                )
                            )?;
                            return Ok(());
                        }
                    }
                }
                let first = raw.first().cloned().unwrap_or_default();
                let parsed: Result<Vec<QueryRequest>, graphbi::WireError> =
                    raw.iter().map(|l| QueryRequest::parse_text(l)).collect();
                match parsed {
                    Err(e) => {
                        writeln!(
                            writer,
                            "{}",
                            protocol::render_err_id(ErrorCode::Malformed, &e.to_string(), rid)
                        )?;
                        record_failure(
                            ctx,
                            rid,
                            cid,
                            "batch",
                            &first,
                            &pinned,
                            started,
                            ErrorCode::Malformed,
                            &e.to_string(),
                        );
                    }
                    Ok(reqs) => {
                        ctx.metrics.requests.add(k as u64);
                        let sampled = ctx.recorder.sample();
                        match dispatch(ctx, &pinned, reqs, sampled) {
                            Ok(outcomes) => {
                                let lines: usize =
                                    outcomes.iter().map(|o| o.response.line_count()).sum();
                                let (gen, epoch) = pinned.info();
                                writeln!(
                                    writer,
                                    "OK count={k} generation={gen} epoch={epoch} lines={lines} id={rid}"
                                )?;
                                for o in &outcomes {
                                    write!(writer, "{}", o.response.to_text())?;
                                }
                                let total_ns = dur_ns(started.elapsed());
                                if ctx.recorder.should_capture(sampled, total_ns, false) {
                                    let mut io = IoStats::new();
                                    let mut matches = 0u64;
                                    let mut wait_ns = 0u64;
                                    for o in &outcomes {
                                        io.merge(&o.io);
                                        matches += response_matches(&o.response);
                                        wait_ns = wait_ns.max(o.wait_ns);
                                    }
                                    // A 1-request batch rides the sampled
                                    // singleton path, so its profile is exact.
                                    let profile = outcomes
                                        .into_iter()
                                        .find_map(|o| o.profile)
                                        .unwrap_or_else(|| {
                                            synthesized_profile(io, total_ns, matches)
                                        });
                                    ctx.recorder.observe(
                                        RequestTrace {
                                            rid,
                                            cid,
                                            verb: "batch",
                                            request: first,
                                            generation: gen,
                                            epoch,
                                            queue_wait_ns: wait_ns,
                                            total_ns,
                                            batch: k as u64,
                                            status: 0,
                                            error: None,
                                            profile,
                                        },
                                        sampled,
                                    );
                                }
                            }
                            Err(r) => refuse(
                                &mut writer,
                                ctx,
                                rid,
                                cid,
                                "batch",
                                &first,
                                &pinned,
                                started,
                                r,
                            )?,
                        }
                    }
                }
                ctx.metrics.verb_batch_us.record(dur_us(started.elapsed()));
            }
            Verb::Commit(k) => {
                sp.attr("ops", k as u64);
                let mut raw = Vec::with_capacity(k);
                for _ in 0..k {
                    match read_frame_line(&mut reader, ctx)? {
                        FrameLine::Line(l) => raw.push(l),
                        FrameLine::Eof => return Ok(()),
                        FrameLine::TooLong => {
                            writeln!(
                                writer,
                                "{}",
                                protocol::render_err_id(
                                    ErrorCode::Malformed,
                                    "line exceeds frame cap",
                                    rid
                                )
                            )?;
                            return Ok(());
                        }
                    }
                }
                let first = raw.first().cloned().unwrap_or_default();
                let parsed: Result<Vec<DeltaOp>, graphbi::WireError> =
                    raw.iter().map(|l| protocol::parse_op(l)).collect();
                match parsed {
                    Err(e) => {
                        writeln!(
                            writer,
                            "{}",
                            protocol::render_err_id(ErrorCode::Malformed, &e.to_string(), rid)
                        )?;
                        record_failure(
                            ctx,
                            rid,
                            None,
                            "commit",
                            &first,
                            &pinned,
                            started,
                            ErrorCode::Malformed,
                            &e.to_string(),
                        );
                    }
                    Ok(ops) => {
                        let sampled = ctx.recorder.sample();
                        match ctx.store.commit(&ops) {
                            Err((code, msg)) => {
                                writeln!(writer, "{}", protocol::render_err_id(code, &msg, rid))?;
                                record_failure(
                                    ctx, rid, None, "commit", &first, &pinned, started, code, &msg,
                                );
                            }
                            Ok(()) => {
                                ctx.metrics.commits.inc();
                                // Read-your-writes: re-pin past our own commit.
                                pinned = ctx.store.pin();
                                let (gen, epoch) = pinned.info();
                                writeln!(
                                    writer,
                                    "OK generation={gen} epoch={epoch} lines=0 id={rid}"
                                )?;
                                let total_ns = dur_ns(started.elapsed());
                                if ctx.recorder.should_capture(sampled, total_ns, false) {
                                    ctx.recorder.observe(
                                        RequestTrace {
                                            rid,
                                            cid: None,
                                            verb: "commit",
                                            request: first,
                                            generation: gen,
                                            epoch,
                                            queue_wait_ns: 0,
                                            total_ns,
                                            batch: k as u64,
                                            status: 0,
                                            error: None,
                                            profile: synthesized_profile(
                                                IoStats::new(),
                                                total_ns,
                                                0,
                                            ),
                                        },
                                        sampled,
                                    );
                                }
                            }
                        }
                    }
                }
                ctx.metrics.verb_commit_us.record(dur_us(started.elapsed()));
            }
            Verb::Profile(payload) => {
                match QueryRequest::parse_text(&payload) {
                    Err(e) => writeln!(
                        writer,
                        "{}",
                        protocol::render_err_id(ErrorCode::Malformed, &e.to_string(), rid)
                    )?,
                    // Profiling runs solo on the handler thread — a profile
                    // measures one request, not its luck sharing a batch.
                    Ok(req) => match pinned.profile(&req) {
                        Err(e) => {
                            writeln!(
                                writer,
                                "{}",
                                protocol::render_err_id(e.code(), &e.to_string(), rid)
                            )?;
                            record_failure(
                                ctx,
                                rid,
                                None,
                                "profile",
                                &payload,
                                &pinned,
                                started,
                                e.code(),
                                &e.to_string(),
                            );
                        }
                        Ok((_, prof)) => {
                            writeln!(writer, "OK lines=1 id={rid}")?;
                            writeln!(writer, "{}", prof.render_json())?;
                            let (gen, epoch) = pinned.info();
                            let total_ns = dur_ns(started.elapsed());
                            // A profiled request is always captured: the
                            // stored Profile is the exact object whose JSON
                            // just went on the wire, so TRACE replays it
                            // bit-identically.
                            ctx.recorder.observe(
                                RequestTrace {
                                    rid,
                                    cid: None,
                                    verb: "profile",
                                    request: payload,
                                    generation: gen,
                                    epoch,
                                    queue_wait_ns: 0,
                                    total_ns,
                                    batch: 1,
                                    status: 0,
                                    error: None,
                                    profile: prof,
                                },
                                true,
                            );
                        }
                    },
                }
                ctx.metrics.verb_profile_us.record(dur_us(started.elapsed()));
            }
            Verb::Metrics => {
                let text = graphbi_obs::global().snapshot().render_text();
                write!(writer, "OK lines={} id={rid}\n{text}", text.lines().count())?;
            }
            Verb::Trace(target) => match ctx.recorder.get(target) {
                Some(trace) => {
                    writeln!(writer, "OK lines=1 id={rid}")?;
                    writeln!(writer, "{}", trace.profile.render_json())?;
                }
                None => {
                    writeln!(
                        writer,
                        "{}",
                        protocol::render_err_id(
                            ErrorCode::NotFound,
                            &format!("no captured trace for request id {target}"),
                            rid
                        )
                    )?;
                }
            },
            Verb::Slowlog(n) => {
                let entries = ctx.recorder.recent_slow(n.unwrap_or(DEFAULT_SLOWLOG));
                writeln!(writer, "OK lines={} id={rid}", entries.len())?;
                for entry in &entries {
                    writeln!(writer, "{}", entry.render_json())?;
                }
            }
            Verb::Top => {
                writeln!(writer, "OK lines=1 id={rid}")?;
                writeln!(writer, "{}", render_top(ctx))?;
            }
            Verb::Refresh => {
                pinned = ctx.store.pin();
                let (gen, epoch) = pinned.info();
                writeln!(writer, "OK generation={gen} epoch={epoch} lines=0 id={rid}")?;
            }
            Verb::Quit => {
                writeln!(writer, "OK lines=0 id={rid}")?;
                writer.flush()?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// The single batcher: drains compatible runs and answers each with one
/// `evaluate_many`. On a batch-level error it falls back to per-request
/// execution so one poisoned request cannot fail its neighbours.
fn batcher_loop(ctx: &Arc<Ctx>) {
    let _tracing = ctx.collector.as_ref().map(graphbi_obs::install);
    let reg = graphbi_obs::global();
    let batches = reg.counter("graphbi_serve_batches_total");
    let batched = reg.counter("graphbi_serve_batched_requests_total");
    let size_hist = reg.histogram("graphbi_serve_batch_size");
    let wait_hist = reg.histogram("graphbi_serve_queue_wait_us");
    let depth_gauge = reg.gauge("graphbi_serve_queue_depth");
    let inflight_gauge = reg.gauge("graphbi_serve_inflight_batch");
    // Sampled jobs never coalesce: each runs solo through the profiler so
    // its captured trace is exact, not an estimate of its share of a run.
    while let Some(batch) = ctx.queue.take_batch(ctx.cfg.batch_max, |a, b| {
        a.pinned.batch_key() == b.pinned.batch_key() && !a.sampled && !b.sampled
    }) {
        depth_gauge.set(ctx.queue.len() as i64);
        if !ctx.cfg.batch_delay.is_zero() {
            std::thread::sleep(ctx.cfg.batch_delay);
        }
        let mut sp = graphbi_obs::span("serve.batch");
        sp.attr("size", batch.len() as u64);
        batches.inc();
        batched.add(batch.len() as u64);
        size_hist.record(batch.len() as u64);
        inflight_gauge.set(batch.len() as i64);
        let waits: Vec<u64> = batch
            .iter()
            .map(|job| dur_ns(job.enqueued.elapsed()))
            .collect();
        for wait in &waits {
            wait_hist.record(wait / 1_000);
        }
        let run = batch.len() as u64;
        if run == 1 && batch[0].sampled {
            let job = batch.into_iter().next().expect("singleton batch");
            let sent = match job.pinned.profile(&job.request) {
                Ok((response, profile)) => Ok(JobOutcome {
                    response,
                    io: profile.stats.clone(),
                    wait_ns: waits[0],
                    batch: 1,
                    profile: Some(profile),
                }),
                Err(e) => Err(e),
            };
            let _ = job.reply.send((job.index, sent));
            inflight_gauge.set(0);
            continue;
        }
        let requests: Vec<QueryRequest> = batch.iter().map(|j| j.request.clone()).collect();
        match batch[0].pinned.evaluate_many(&requests) {
            Ok(results) => {
                for ((job, (response, io)), wait_ns) in batch.into_iter().zip(results).zip(waits) {
                    let outcome = JobOutcome {
                        response,
                        io,
                        wait_ns,
                        batch: run,
                        profile: None,
                    };
                    let _ = job.reply.send((job.index, Ok(outcome)));
                }
            }
            Err(_) => {
                for (job, wait_ns) in batch.into_iter().zip(waits) {
                    let result = job.pinned.execute(&job.request).map(|(response, io)| {
                        JobOutcome {
                            response,
                            io,
                            wait_ns,
                            batch: 1,
                            profile: None,
                        }
                    });
                    let _ = job.reply.send((job.index, result));
                }
            }
        }
        inflight_gauge.set(0);
    }
}
