//! The concurrent TCP server: per-connection sessions over a shared
//! store, with cross-connection request batching.
//!
//! # Architecture
//!
//! One thread accepts connections; each connection gets a handler thread
//! that parses frames and *enqueues* query jobs rather than executing
//! them. A single batcher thread drains the [`AdmissionQueue`] in runs of
//! jobs pinned to the same store state and answers each run with **one**
//! [`Session::evaluate_many`] call — so requests arriving concurrently on
//! different connections share duplicate-elimination, column fetches and
//! the worker pool exactly like an in-process batch (PR 2's scaling
//! trick, now across the network).
//!
//! # Sessions and snapshots
//!
//! A connection pins its view of the store at `HELLO` time. Over an
//! [`MvccStore`] that is a real `(generation, epoch)` snapshot: answers
//! stay stable while writers commit, until the connection `REFRESH`es or
//! commits itself (read-your-writes). Batching respects pins — only jobs
//! on the same `(generation, epoch)` coalesce, so a batch can never mix
//! two points in time.
//!
//! # Backpressure state machine
//!
//! ```text
//!             offer(job, admission_timeout)
//! CLIENT ──▶ queue has room? ──yes──▶ ADMITTED ──▶ batched ──▶ OK …
//!                │ no
//!                ▼ wait ≤ admission_timeout
//!            room appeared? ──yes──▶ ADMITTED
//!                │ no (timeout)
//!                ▼
//!            BUSY 210 … (typed, within the timeout; nothing buffered)
//! ```
//!
//! Memory is bounded end-to-end: frame lines are capped
//! ([`MAX_LINE_BYTES`]), batch counts are capped ([`MAX_BATCH`]), and the
//! queue holds at most `queue_depth` jobs — overload degrades into
//! prompt, typed `BUSY` responses, never into growth.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphbi::{
    Coded, ErrorCode, MvccStore, QueryRequest, Response, Session, SessionError, SharedStore,
    Snapshot,
};
use graphbi_columnstore::{DeltaOp, IoStats};

use crate::protocol::{self, Verb, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::queue::{AdmissionQueue, OfferError};

/// Server tuning knobs. The defaults favour throughput under bursty
/// load; tests tighten them to force the backpressure paths.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission queue depth: jobs waiting for the batcher.
    pub queue_depth: usize,
    /// How long an arriving request may wait for queue space before the
    /// server answers `BUSY`.
    pub admission_timeout: Duration,
    /// Largest run of jobs coalesced into one `evaluate_many` call.
    pub batch_max: usize,
    /// Artificial stall before each batch executes — `0` in production;
    /// tests and benchmarks raise it to make queueing deterministic.
    pub batch_delay: Duration,
    /// Socket read poll interval; bounds how fast handler threads notice
    /// shutdown.
    pub read_timeout: Duration,
    /// When true the server installs a span collector on its threads, so
    /// per-connection `serve.request` / `serve.batch` spans land in a
    /// tracer reachable via [`Server::collector`]. Off by default:
    /// a collector accumulates spans without bound, which a long-running
    /// server must not.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 256,
            admission_timeout: Duration::from_millis(100),
            batch_max: 64,
            batch_delay: Duration::ZERO,
            read_timeout: Duration::from_millis(100),
            trace: false,
        }
    }
}

/// The store a server fronts: lock-shared or MVCC.
#[derive(Clone)]
pub enum ServeStore {
    /// Reader-writer lock over one [`graphbi::GraphStore`]; sessions pin
    /// nothing (every query sees the latest state).
    Shared(SharedStore),
    /// MVCC store; sessions pin `(generation, epoch)` snapshots.
    Mvcc(Arc<MvccStore>),
}

/// A connection's pinned execution state.
#[derive(Clone)]
enum Pinned {
    Shared(SharedStore),
    Mvcc(Arc<Snapshot>),
}

impl Pinned {
    /// Jobs coalesce only within one key: the pinned `(generation,
    /// epoch)`. Shared stores have a single timeline, so every job
    /// shares key `(0, 0)` — `SharedStore::evaluate_many` still answers
    /// the whole batch under one read lock.
    fn batch_key(&self) -> (u64, u64) {
        match self {
            Pinned::Shared(_) => (0, 0),
            Pinned::Mvcc(s) => (s.generation(), s.epoch()),
        }
    }

    fn info(&self) -> (u64, u64) {
        self.batch_key()
    }

    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        match self {
            Pinned::Shared(s) => s.execute(request),
            Pinned::Mvcc(s) => s.execute(request),
        }
    }

    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        match self {
            Pinned::Shared(s) => s.evaluate_many(requests),
            Pinned::Mvcc(s) => s.evaluate_many(requests),
        }
    }

    fn profile(
        &self,
        request: &QueryRequest,
    ) -> Result<(Response, graphbi::Profile), SessionError> {
        match self {
            Pinned::Shared(s) => s.profile(request),
            Pinned::Mvcc(s) => s.profile(request),
        }
    }
}

impl ServeStore {
    fn pin(&self) -> Pinned {
        match self {
            ServeStore::Shared(s) => Pinned::Shared(s.clone()),
            ServeStore::Mvcc(m) => Pinned::Mvcc(Arc::new(m.snapshot())),
        }
    }

    fn universe_text(&self) -> String {
        match self {
            ServeStore::Shared(s) => s.read(|g| g.universe().to_text()),
            ServeStore::Mvcc(m) => m.snapshot().universe().to_text(),
        }
    }

    fn edge_count(&self) -> usize {
        match self {
            ServeStore::Shared(s) => s.read(|g| g.universe().edge_count()),
            ServeStore::Mvcc(m) => m.snapshot().universe().edge_count(),
        }
    }

    /// Applies a commit atomically (one write lock / one MVCC commit).
    fn commit(&self, ops: &[DeltaOp]) -> Result<(), (ErrorCode, String)> {
        let edges = self.edge_count() as u32;
        for op in ops {
            let rec = match op {
                DeltaOp::Insert(r) => r,
                DeltaOp::Update(_, r) => r,
            };
            if let Some((e, _)) = rec.edges().iter().find(|(e, _)| e.0 >= edges) {
                return Err((
                    ErrorCode::UnknownEdge,
                    format!("edge id {} is not in the universe (< {edges})", e.0),
                ));
            }
        }
        match self {
            ServeStore::Shared(s) => {
                if ops.iter().any(|op| matches!(op, DeltaOp::Update(..))) {
                    return Err((
                        ErrorCode::Unsupported,
                        "update ops need an MVCC store (serve --mvcc)".into(),
                    ));
                }
                s.write(|g| {
                    for op in ops {
                        if let DeltaOp::Insert(rec) = op {
                            g.append_record(rec);
                        }
                    }
                });
                Ok(())
            }
            ServeStore::Mvcc(m) => match m.commit(ops) {
                Ok(_epoch) => Ok(()),
                Err(e) => Err((e.code(), e.to_string())),
            },
        }
    }
}

/// An indexed answer on its way back to the handler that enqueued it.
type Reply = (usize, Result<(Response, IoStats), SessionError>);

/// One queued request: where it runs, where its answer goes.
struct Job {
    pinned: Pinned,
    request: QueryRequest,
    index: usize,
    reply: mpsc::Sender<Reply>,
    enqueued: Instant,
}

struct Ctx {
    store: ServeStore,
    cfg: ServeConfig,
    queue: AdmissionQueue<Job>,
    shutdown: AtomicBool,
    collector: Option<Arc<graphbi_obs::Collector>>,
    /// The universe text served by `HELLO`, rendered once.
    hello_text: String,
}

/// A running server; dropping it shuts the server down.
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    pub fn start(store: ServeStore, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // 0 = scalar, 1 = simd; resolved once so dashboards can tell which
        // kernel path this process actually runs.
        graphbi_obs::global()
            .gauge("graphbi_kernel_path")
            .set(i64::from(matches!(
                graphbi::kernels::active(),
                graphbi::kernels::KernelPath::Simd
            )));
        let hello_text = store.universe_text();
        let collector = cfg.trace.then(|| Arc::new(graphbi_obs::Collector::new()));
        let ctx = Arc::new(Ctx {
            store,
            queue: AdmissionQueue::new(cfg.queue_depth),
            cfg,
            shutdown: AtomicBool::new(false),
            collector,
            hello_text,
        });
        let batcher = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || batcher_loop(&ctx))
        };
        let accept = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || accept_loop(listener, &ctx))
        };
        Ok(Server {
            addr: local,
            ctx,
            accept: Some(accept),
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves the port when started with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The span collector, when started with [`ServeConfig::trace`].
    pub fn collector(&self) -> Option<&Arc<graphbi_obs::Collector>> {
        self.ctx.collector.as_ref()
    }

    /// Stops accepting, drains every queued job (each still gets its
    /// response), and joins all threads.
    pub fn shutdown(&mut self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        self.ctx.queue.close();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops (`graphbi serve` runs forever on
    /// this).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(ctx);
        handlers.push(std::thread::spawn(move || {
            let _tracing = ctx.collector.as_ref().map(graphbi_obs::install);
            graphbi_obs::global()
                .counter("graphbi_serve_connections_total")
                .inc();
            graphbi_obs::global()
                .gauge("graphbi_serve_connections")
                .add(1);
            let peer = handle_connection(stream, &ctx);
            graphbi_obs::global()
                .gauge("graphbi_serve_connections")
                .add(-1);
            drop(peer);
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// How one frame-line read ended.
enum FrameLine {
    Line(String),
    Eof,
    TooLong,
}

/// Reads one `\n`-terminated line with a hard length cap, polling the
/// socket's read timeout so shutdown is noticed promptly. A partial line
/// at EOF (or shutdown) is discarded — it was never a complete frame.
fn read_frame_line(reader: &mut BufReader<TcpStream>, ctx: &Ctx) -> io::Result<FrameLine> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return Ok(FrameLine::Eof);
        }
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(FrameLine::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                out.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if out.len() > MAX_LINE_BYTES {
                    return Ok(FrameLine::TooLong);
                }
                return Ok(FrameLine::Line(String::from_utf8_lossy(&out).into_owned()));
            }
            None => {
                let n = buf.len();
                out.extend_from_slice(buf);
                reader.consume(n);
                if out.len() > MAX_LINE_BYTES {
                    return Ok(FrameLine::TooLong);
                }
            }
        }
    }
}

/// What a dispatch attempt answers when it cannot produce results.
enum Refusal {
    Busy(String),
    Fail(ErrorCode, String),
}

/// Enqueues `requests` for the batcher and collects the answers in
/// request order. The whole group fails with the first request error —
/// answers already computed for it are discarded, never half-reported.
fn dispatch(
    ctx: &Ctx,
    pinned: &Pinned,
    requests: Vec<QueryRequest>,
) -> Result<Vec<(Response, IoStats)>, Refusal> {
    let n = requests.len();
    let (tx, rx) = mpsc::channel();
    for (index, request) in requests.into_iter().enumerate() {
        let job = Job {
            pinned: pinned.clone(),
            request,
            index,
            reply: tx.clone(),
            enqueued: Instant::now(),
        };
        match ctx.queue.offer(job, ctx.cfg.admission_timeout) {
            Ok(()) => {}
            Err(OfferError::Full(_)) => {
                graphbi_obs::global()
                    .counter("graphbi_serve_busy_total")
                    .inc();
                return Err(Refusal::Busy(format!(
                    "admission queue full ({} deep) for {:?}",
                    ctx.cfg.queue_depth, ctx.cfg.admission_timeout
                )));
            }
            Err(OfferError::Closed(_)) => {
                return Err(Refusal::Fail(ErrorCode::Io, "server shutting down".into()))
            }
        }
    }
    drop(tx);
    let mut results: Vec<Option<(Response, IoStats)>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok((i, Ok(r))) => results[i] = Some(r),
            Ok((_, Err(e))) => return Err(Refusal::Fail(e.code(), e.to_string())),
            Err(_) => {
                return Err(Refusal::Fail(
                    ErrorCode::Internal,
                    "batcher reply lost".into(),
                ))
            }
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every index answered"))
        .collect())
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let reg = graphbi_obs::global();

    // Handshake: the first frame must be HELLO with our version.
    let first = match read_frame_line(&mut reader, ctx)? {
        FrameLine::Line(l) => l,
        FrameLine::Eof => return Ok(()),
        FrameLine::TooLong => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(ErrorCode::Malformed, "line exceeds frame cap")
            )?;
            return Ok(());
        }
    };
    match protocol::parse_verb(&first) {
        Ok(Verb::Hello(v)) if v == PROTOCOL_VERSION => {}
        Ok(Verb::Hello(v)) => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(
                    ErrorCode::Unsupported,
                    &format!("protocol {v:?}; this server speaks {PROTOCOL_VERSION}")
                )
            )?;
            return Ok(());
        }
        Ok(_) | Err(_) => {
            writeln!(
                writer,
                "{}",
                protocol::render_err(ErrorCode::Malformed, "first frame must be HELLO <version>")
            )?;
            return Ok(());
        }
    }
    let mut pinned = ctx.store.pin();
    let (gen, epoch) = pinned.info();
    write!(
        writer,
        "OK {PROTOCOL_VERSION} generation={gen} epoch={epoch} lines={}\n{}",
        ctx.hello_text.lines().count(),
        ctx.hello_text
    )?;
    writer.flush()?;

    loop {
        let line = match read_frame_line(&mut reader, ctx)? {
            FrameLine::Line(l) => l,
            FrameLine::Eof => return Ok(()),
            FrameLine::TooLong => {
                // The stream can no longer be framed; answer and close.
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err(ErrorCode::Malformed, "line exceeds frame cap")
                )?;
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let verb = match protocol::parse_verb(&line) {
            Ok(v) => v,
            Err(e) => {
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err(ErrorCode::Malformed, &e.to_string())
                )?;
                writer.flush()?;
                continue;
            }
        };
        let mut sp = graphbi_obs::span("serve.request");
        match verb {
            Verb::Hello(_) => {
                writeln!(
                    writer,
                    "{}",
                    protocol::render_err(ErrorCode::Malformed, "HELLO already exchanged")
                )?;
            }
            Verb::Query(payload) => {
                sp.attr("requests", 1);
                match QueryRequest::parse_text(&payload) {
                    Err(e) => writeln!(
                        writer,
                        "{}",
                        protocol::render_err(ErrorCode::Malformed, &e.to_string())
                    )?,
                    Ok(req) => {
                        reg.counter("graphbi_serve_requests_total").inc();
                        match dispatch(ctx, &pinned, vec![req]) {
                            Ok(results) => {
                                let (resp, _) = &results[0];
                                let (gen, epoch) = pinned.info();
                                write!(
                                    writer,
                                    "OK generation={gen} epoch={epoch} lines={}\n{}",
                                    resp.line_count(),
                                    resp.to_text()
                                )?;
                            }
                            Err(r) => write_refusal(&mut writer, r)?,
                        }
                    }
                }
            }
            Verb::Batch(k) => {
                sp.attr("requests", k as u64);
                // Consume all k payload lines before parsing, so a bad
                // request never desynchronizes framing.
                let mut raw = Vec::with_capacity(k);
                for _ in 0..k {
                    match read_frame_line(&mut reader, ctx)? {
                        FrameLine::Line(l) => raw.push(l),
                        FrameLine::Eof => return Ok(()),
                        FrameLine::TooLong => {
                            writeln!(
                                writer,
                                "{}",
                                protocol::render_err(
                                    ErrorCode::Malformed,
                                    "line exceeds frame cap"
                                )
                            )?;
                            return Ok(());
                        }
                    }
                }
                let parsed: Result<Vec<QueryRequest>, graphbi::WireError> =
                    raw.iter().map(|l| QueryRequest::parse_text(l)).collect();
                match parsed {
                    Err(e) => writeln!(
                        writer,
                        "{}",
                        protocol::render_err(ErrorCode::Malformed, &e.to_string())
                    )?,
                    Ok(reqs) => {
                        reg.counter("graphbi_serve_requests_total").add(k as u64);
                        match dispatch(ctx, &pinned, reqs) {
                            Ok(results) => {
                                let lines: usize =
                                    results.iter().map(|(r, _)| r.line_count()).sum();
                                let (gen, epoch) = pinned.info();
                                writeln!(
                                    writer,
                                    "OK count={k} generation={gen} epoch={epoch} lines={lines}"
                                )?;
                                for (resp, _) in &results {
                                    write!(writer, "{}", resp.to_text())?;
                                }
                            }
                            Err(r) => write_refusal(&mut writer, r)?,
                        }
                    }
                }
            }
            Verb::Commit(k) => {
                sp.attr("ops", k as u64);
                let mut raw = Vec::with_capacity(k);
                for _ in 0..k {
                    match read_frame_line(&mut reader, ctx)? {
                        FrameLine::Line(l) => raw.push(l),
                        FrameLine::Eof => return Ok(()),
                        FrameLine::TooLong => {
                            writeln!(
                                writer,
                                "{}",
                                protocol::render_err(
                                    ErrorCode::Malformed,
                                    "line exceeds frame cap"
                                )
                            )?;
                            return Ok(());
                        }
                    }
                }
                let parsed: Result<Vec<DeltaOp>, graphbi::WireError> =
                    raw.iter().map(|l| protocol::parse_op(l)).collect();
                match parsed {
                    Err(e) => writeln!(
                        writer,
                        "{}",
                        protocol::render_err(ErrorCode::Malformed, &e.to_string())
                    )?,
                    Ok(ops) => match ctx.store.commit(&ops) {
                        Err((code, msg)) => {
                            writeln!(writer, "{}", protocol::render_err(code, &msg))?
                        }
                        Ok(()) => {
                            reg.counter("graphbi_serve_commits_total").inc();
                            // Read-your-writes: re-pin past our own commit.
                            pinned = ctx.store.pin();
                            let (gen, epoch) = pinned.info();
                            writeln!(writer, "OK generation={gen} epoch={epoch} lines=0")?;
                        }
                    },
                }
            }
            Verb::Profile(payload) => match QueryRequest::parse_text(&payload) {
                Err(e) => writeln!(
                    writer,
                    "{}",
                    protocol::render_err(ErrorCode::Malformed, &e.to_string())
                )?,
                // Profiling runs solo on the handler thread — a profile
                // measures one request, not its luck sharing a batch.
                Ok(req) => match pinned.profile(&req) {
                    Err(e) => {
                        writeln!(writer, "{}", protocol::render_err(e.code(), &e.to_string()))?
                    }
                    Ok((_, prof)) => {
                        writeln!(writer, "OK lines=1")?;
                        writeln!(writer, "{}", prof.render_json())?;
                    }
                },
            },
            Verb::Metrics => {
                let text = reg.snapshot().render_text();
                write!(writer, "OK lines={}\n{text}", text.lines().count())?;
            }
            Verb::Refresh => {
                pinned = ctx.store.pin();
                let (gen, epoch) = pinned.info();
                writeln!(writer, "OK generation={gen} epoch={epoch} lines=0")?;
            }
            Verb::Quit => {
                writeln!(writer, "OK lines=0")?;
                writer.flush()?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

fn write_refusal(writer: &mut TcpStream, refusal: Refusal) -> io::Result<()> {
    match refusal {
        Refusal::Busy(msg) => writeln!(writer, "{}", protocol::render_busy(&msg)),
        Refusal::Fail(code, msg) => writeln!(writer, "{}", protocol::render_err(code, &msg)),
    }
}

/// The single batcher: drains compatible runs and answers each with one
/// `evaluate_many`. On a batch-level error it falls back to per-request
/// execution so one poisoned request cannot fail its neighbours.
fn batcher_loop(ctx: &Arc<Ctx>) {
    let _tracing = ctx.collector.as_ref().map(graphbi_obs::install);
    let reg = graphbi_obs::global();
    let batches = reg.counter("graphbi_serve_batches_total");
    let batched = reg.counter("graphbi_serve_batched_requests_total");
    let size_hist = reg.histogram("graphbi_serve_batch_size");
    let wait_hist = reg.histogram("graphbi_serve_queue_wait_us");
    let depth_gauge = reg.gauge("graphbi_serve_queue_depth");
    while let Some(batch) = ctx.queue.take_batch(ctx.cfg.batch_max, |a, b| {
        a.pinned.batch_key() == b.pinned.batch_key()
    }) {
        depth_gauge.set(ctx.queue.len() as i64);
        if !ctx.cfg.batch_delay.is_zero() {
            std::thread::sleep(ctx.cfg.batch_delay);
        }
        let mut sp = graphbi_obs::span("serve.batch");
        sp.attr("size", batch.len() as u64);
        batches.inc();
        batched.add(batch.len() as u64);
        size_hist.record(batch.len() as u64);
        for job in &batch {
            wait_hist.record(u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        let requests: Vec<QueryRequest> = batch.iter().map(|j| j.request.clone()).collect();
        match batch[0].pinned.evaluate_many(&requests) {
            Ok(results) => {
                for (job, result) in batch.into_iter().zip(results) {
                    let _ = job.reply.send((job.index, Ok(result)));
                }
            }
            Err(_) => {
                for job in batch {
                    let result = job.pinned.execute(&job.request);
                    let _ = job.reply.send((job.index, result));
                }
            }
        }
    }
}
