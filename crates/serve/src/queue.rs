//! The admission-controlled bounded queue at the heart of the server.
//!
//! Every connection funnels its requests here; a single batcher drains
//! runs of compatible jobs into one `evaluate_many` call. The queue is
//! the backpressure point: depth is fixed at construction, and an
//! [`AdmissionQueue::offer`] that cannot place its item within the
//! admission timeout returns it to the caller — which answers the client
//! with a typed `BUSY` instead of buffering unboundedly.
//!
//! Built on `std::sync::{Mutex, Condvar}` (two condvars: producers wait
//! on `not_full`, the consumer on `not_empty`), so the server adds no
//! dependencies beyond the standard library.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with timed admission and keyed batch draining.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
}

/// Why an [`AdmissionQueue::offer`] failed; the item comes back so the
/// caller can still answer its client.
#[derive(Debug)]
pub enum OfferError<T> {
    /// The queue stayed full for the whole admission timeout.
    Full(T),
    /// The queue is shut down.
    Closed(T),
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `depth` waiting items.
    pub fn new(depth: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Current queue depth (for gauges).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when no items wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tries to enqueue `item`, waiting at most `timeout` for space.
    pub fn offer(&self, item: T, timeout: Duration) -> Result<(), OfferError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(OfferError::Closed(item));
            }
            if inner.items.len() < self.depth {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(OfferError::Full(item));
            }
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(inner, deadline - now)
                .expect("queue lock");
            inner = guard;
        }
    }

    /// Takes the next run of compatible jobs: the front item plus the
    /// following items for which `same(front, item)` holds, up to `max`.
    /// Order within the queue is preserved (a run never jumps over an
    /// incompatible item, so no request is starved or reordered past a
    /// barrier). Blocks while the queue is empty; returns `None` only
    /// after [`AdmissionQueue::close`] once every queued item has been
    /// drained — nothing is dropped unanswered.
    pub fn take_batch(&self, max: usize, same: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(front) = inner.items.pop_front() {
                // Spans the run-assembly walk only (not the empty-queue
                // wait), so a trace shows what coalescing itself costs.
                // Free when the calling thread has no collector installed.
                let mut sp = graphbi_obs::span("queue.assemble");
                let mut batch = vec![front];
                while batch.len() < max.max(1) {
                    match inner.items.front() {
                        Some(next) if same(&batch[0], next) => {
                            let next = inner.items.pop_front().expect("front exists");
                            batch.push(next);
                        }
                        _ => break,
                    }
                }
                sp.attr("size", batch.len() as u64);
                sp.attr("queued", inner.items.len() as u64);
                drop(inner);
                self.not_full.notify_all();
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Shuts the queue down: subsequent offers fail fast, and
    /// [`AdmissionQueue::take_batch`] drains what remains then returns
    /// `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn offer_times_out_when_full() {
        let q = AdmissionQueue::new(2);
        q.offer(1, Duration::from_millis(1)).unwrap();
        q.offer(2, Duration::from_millis(1)).unwrap();
        let started = Instant::now();
        match q.offer(3, Duration::from_millis(30)) {
            Err(OfferError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(started.elapsed() >= Duration::from_millis(30));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_batch_groups_compatible_runs() {
        let q = AdmissionQueue::new(16);
        for key in [1, 1, 1, 2, 1] {
            q.offer(key, Duration::from_millis(1)).unwrap();
        }
        let same = |a: &i32, b: &i32| a == b;
        assert_eq!(q.take_batch(8, same), Some(vec![1, 1, 1]));
        assert_eq!(q.take_batch(8, same), Some(vec![2]));
        assert_eq!(q.take_batch(8, same), Some(vec![1]));
    }

    #[test]
    fn take_batch_respects_max() {
        let q = AdmissionQueue::new(16);
        for _ in 0..5 {
            q.offer(7, Duration::from_millis(1)).unwrap();
        }
        assert_eq!(q.take_batch(2, |a, b| a == b), Some(vec![7, 7]));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(AdmissionQueue::new(4));
        q.offer(1, Duration::from_millis(1)).unwrap();
        q.close();
        assert!(matches!(
            q.offer(2, Duration::from_millis(1)),
            Err(OfferError::Closed(2))
        ));
        assert_eq!(q.take_batch(8, |_, _| true), Some(vec![1]));
        assert_eq!(q.take_batch(8, |_, _| true), None);
    }

    #[test]
    fn blocked_producer_wakes_on_drain() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.offer(1, Duration::from_millis(1)).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.offer(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.take_batch(1, |_, _| true), Some(vec![1]));
        t.join().unwrap().expect("offer succeeds after drain");
        assert_eq!(q.len(), 1);
    }
}
