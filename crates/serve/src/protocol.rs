//! The wire protocol: versioned, line-oriented text frames.
//!
//! Every frame is UTF-8 lines. The client speaks verbs; the server
//! answers exactly one status frame per verb — `OK`, `ERR` or `BUSY` —
//! so a connection is never dropped without a response. Multi-line
//! payloads are length-framed by a `lines=<n>` field in the `OK` head,
//! and request/response payloads use the canonical [`QueryRequest`] /
//! [`Response`] grammar from `graphbi::wire` — the same text the CLI and
//! testkit use.
//!
//! | verb                | payload lines after the verb | reply                                   |
//! |---------------------|------------------------------|-----------------------------------------|
//! | `HELLO graphbi/1`   | —                            | `OK graphbi/1 generation= epoch= lines=n id=` + universe text |
//! | `QUERY [id=c] <request>` | —                       | `OK generation= epoch= lines=n id=` + response block |
//! | `BATCH <k> [id=c]`  | `k` request lines            | `OK count=k generation= epoch= lines=n id=` + `k` response blocks |
//! | `COMMIT <k>`        | `k` op lines                 | `OK generation= epoch= lines=0 id=`     |
//! | `PROFILE <request>` | —                            | `OK lines=1 id=` + one JSON line        |
//! | `METRICS`           | —                            | `OK lines=n id=` + Prometheus text      |
//! | `TRACE <rid>`       | —                            | `OK lines=1 id=` + captured profile JSON |
//! | `SLOWLOG [n]`       | —                            | `OK lines=n id=` + one JSON line per slow request |
//! | `TOP`               | —                            | `OK lines=1 id=` + live snapshot JSON   |
//! | `REFRESH`           | —                            | `OK generation= epoch= lines=0 id=`     |
//! | `QUIT`              | —                            | `OK lines=0 id=`, then close            |
//!
//! Every reply head carries `id=<rid>`, the server-assigned request id —
//! the handle `TRACE` replays a captured trace by. The optional `id=<c>`
//! attribute on `QUERY`/`BATCH` is a *client* correlation id echoed into
//! the flight-recorder entry, so a client can find its own requests in
//! `SLOWLOG` output without tracking server ids.
//!
//! Failure frames are single lines: `ERR <code> <SYMBOL> <message> id=<rid>`
//! with a stable [`ErrorCode`], and `BUSY <code> <message>` when the
//! admission queue stayed full for the whole timeout (the backpressure
//! signal — retry later). Commit op lines are `insert <edge>:<measure>…`
//! and `update <rid> <edge>:<measure>…`.

use graphbi::{ErrorCode, WireError};
use graphbi_columnstore::DeltaOp;
use graphbi_graph::{GraphRecord, RecordBuilder};

/// The protocol version token exchanged in `HELLO`. A server refuses
/// other versions with [`ErrorCode::Unsupported`].
pub const PROTOCOL_VERSION: &str = "graphbi/1";

/// Hard cap on one frame line; longer lines are a [`ErrorCode::Malformed`]
/// protocol error and close the connection (the stream can no longer be
/// framed). Keeps per-connection memory bounded under any input.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Hard cap on `BATCH`/`COMMIT` counts, bounding the memory one frame can
/// pin before admission control sees it.
pub const MAX_BATCH: usize = 4096;

/// A client verb line, parsed. `Batch`/`Commit` announce how many payload
/// lines follow.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Version handshake; must be the first frame on a connection.
    Hello(String),
    /// One request (canonical request grammar in the payload), with an
    /// optional client correlation id.
    Query {
        /// Client correlation id (`id=<c>`), echoed into the recorder.
        cid: Option<u64>,
        /// The raw request text.
        payload: String,
    },
    /// `count` request lines follow, with an optional client correlation
    /// id covering the whole frame.
    Batch {
        /// How many request lines follow.
        count: usize,
        /// Client correlation id (`id=<c>`), echoed into the recorder.
        cid: Option<u64>,
    },
    /// `k` op lines follow.
    Commit(usize),
    /// Profile one request.
    Profile(String),
    /// Scrape the metrics registry.
    Metrics,
    /// Replay the captured trace of request `rid`.
    Trace(u64),
    /// The most recent over-threshold requests (default count when `None`).
    Slowlog(Option<usize>),
    /// One-line live server snapshot.
    Top,
    /// Re-pin the session to the store's latest state.
    Refresh,
    /// Close the connection.
    Quit,
}

/// Splits a leading `id=<n>` token off `rest`, if present. Used by
/// `QUERY` (prefix position) — a request whose text genuinely starts with
/// `id=` cannot exist: the request grammar starts with a kind keyword.
fn split_cid(rest: &str) -> Result<(Option<u64>, &str), WireError> {
    let Some(tok) = rest.split_whitespace().next() else {
        return Ok((None, rest));
    };
    let Some(v) = tok.strip_prefix("id=") else {
        return Ok((None, rest));
    };
    let cid = v.parse().map_err(|_| WireError {
        line: 1,
        what: format!("bad correlation id {v:?}"),
    })?;
    Ok((Some(cid), rest[tok.len()..].trim_start()))
}

/// Parses a verb line. The request payload of `QUERY`/`PROFILE` is
/// returned raw — request-grammar errors are reported separately so the
/// client can tell a protocol slip from a bad query.
pub fn parse_verb(line: &str) -> Result<Verb, WireError> {
    let line = line.trim_end_matches('\r');
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let err = |what: String| WireError { line: 1, what };
    let count = |rest: &str, verb: &str| -> Result<usize, WireError> {
        let n: usize = rest
            .parse()
            .map_err(|_| err(format!("{verb} needs a count, got {rest:?}")))?;
        if n == 0 || n > MAX_BATCH {
            return Err(err(format!(
                "{verb} count must be 1..={MAX_BATCH}, got {n}"
            )));
        }
        Ok(n)
    };
    match verb {
        "HELLO" => Ok(Verb::Hello(rest.to_owned())),
        "QUERY" if !rest.is_empty() => {
            let (cid, payload) = split_cid(rest)?;
            if payload.is_empty() {
                return Err(err("QUERY needs a request payload".into()));
            }
            Ok(Verb::Query {
                cid,
                payload: payload.to_owned(),
            })
        }
        "PROFILE" if !rest.is_empty() => Ok(Verb::Profile(rest.to_owned())),
        "QUERY" | "PROFILE" => Err(err(format!("{verb} needs a request payload"))),
        "BATCH" => {
            let (n, cid) = match rest.split_once(' ') {
                Some((n, attr)) => {
                    let (cid, tail) = split_cid(attr.trim())?;
                    if !tail.is_empty() || cid.is_none() {
                        return Err(err(format!("unexpected BATCH attribute {attr:?}")));
                    }
                    (n, cid)
                }
                None => (rest, None),
            };
            Ok(Verb::Batch {
                count: count(n, "BATCH")?,
                cid,
            })
        }
        "COMMIT" => Ok(Verb::Commit(count(rest, "COMMIT")?)),
        "METRICS" => Ok(Verb::Metrics),
        "TRACE" => {
            let rid: u64 = rest
                .parse()
                .map_err(|_| err(format!("TRACE needs a request id, got {rest:?}")))?;
            Ok(Verb::Trace(rid))
        }
        "SLOWLOG" => {
            if rest.is_empty() {
                return Ok(Verb::Slowlog(None));
            }
            let n: usize = rest
                .parse()
                .map_err(|_| err(format!("SLOWLOG count must be a number, got {rest:?}")))?;
            Ok(Verb::Slowlog(Some(n)))
        }
        "TOP" => Ok(Verb::Top),
        "REFRESH" => Ok(Verb::Refresh),
        "QUIT" => Ok(Verb::Quit),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

fn fmt_measure(v: f64) -> String {
    format!("{v:?}")
}

/// Renders one commit op as a grammar line (no newline).
pub fn op_to_text(op: &DeltaOp) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let record = match op {
        DeltaOp::Insert(rec) => {
            out.push_str("insert");
            rec
        }
        DeltaOp::Update(rid, rec) => {
            let _ = write!(out, "update {rid}");
            rec
        }
    };
    for &(e, m) in record.edges() {
        let _ = write!(out, " {}:{}", e.0, fmt_measure(m));
    }
    out
}

fn parse_record<'a>(toks: impl Iterator<Item = &'a str>) -> Result<GraphRecord, WireError> {
    let err = |what: String| WireError { line: 1, what };
    let mut b = RecordBuilder::new();
    let mut any = false;
    for tok in toks {
        let (e, m) = tok
            .split_once(':')
            .ok_or_else(|| err(format!("op element must be edge:measure, got {tok:?}")))?;
        let edge: u32 = e.parse().map_err(|_| err(format!("bad edge id {e:?}")))?;
        let measure: f64 = m.parse().map_err(|_| err(format!("bad measure {m:?}")))?;
        b.add(graphbi_graph::EdgeId(edge), measure);
        any = true;
    }
    if !any {
        return Err(err("op needs at least one edge:measure element".into()));
    }
    Ok(b.build())
}

/// Parses one commit op line.
pub fn parse_op(line: &str) -> Result<DeltaOp, WireError> {
    let err = |what: String| WireError { line: 1, what };
    let mut toks = line.split_whitespace();
    match toks.next() {
        Some("insert") => Ok(DeltaOp::Insert(parse_record(toks)?)),
        Some("update") => {
            let rid = toks
                .next()
                .ok_or_else(|| err("update needs a record id".into()))?;
            let rid: u32 = rid
                .parse()
                .map_err(|_| err(format!("bad record id {rid:?}")))?;
            Ok(DeltaOp::Update(rid, parse_record(toks)?))
        }
        other => Err(err(format!("unknown op {other:?}"))),
    }
}

/// Renders an `ERR` frame line (no newline).
pub fn render_err(code: ErrorCode, message: &str) -> String {
    format!(
        "ERR {} {} {}",
        code.as_u16(),
        code.symbol(),
        sanitize(message)
    )
}

/// Renders an `ERR` frame line carrying the server-assigned request id as
/// a trailing `id=<rid>` token — the handle a client quotes to `TRACE`
/// the failed request.
pub fn render_err_id(code: ErrorCode, message: &str, rid: u64) -> String {
    format!("{} id={rid}", render_err(code, message))
}

/// Renders a `BUSY` frame line (no newline) — the typed backpressure
/// response.
pub fn render_busy(message: &str) -> String {
    format!("BUSY {} {}", ErrorCode::Busy.as_u16(), sanitize(message))
}

/// Status frames are single lines; fold any newline an error message
/// smuggles in (e.g. from an io::Error) so framing survives.
fn sanitize(message: &str) -> String {
    if message.contains('\n') || message.contains('\r') {
        message.replace(['\n', '\r'], " ")
    } else {
        message.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::EdgeId;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            parse_verb("HELLO graphbi/1").unwrap(),
            Verb::Hello("graphbi/1".into())
        );
        assert_eq!(
            parse_verb("QUERY graph views=1 shards=1 : 1").unwrap(),
            Verb::Query {
                cid: None,
                payload: "graph views=1 shards=1 : 1".into()
            }
        );
        assert_eq!(
            parse_verb("QUERY id=42 graph : 1").unwrap(),
            Verb::Query {
                cid: Some(42),
                payload: "graph : 1".into()
            }
        );
        assert_eq!(
            parse_verb("BATCH 3").unwrap(),
            Verb::Batch {
                count: 3,
                cid: None
            }
        );
        assert_eq!(
            parse_verb("BATCH 3 id=7").unwrap(),
            Verb::Batch {
                count: 3,
                cid: Some(7)
            }
        );
        assert_eq!(parse_verb("COMMIT 1\r").unwrap(), Verb::Commit(1));
        assert_eq!(parse_verb("METRICS").unwrap(), Verb::Metrics);
        assert_eq!(parse_verb("TRACE 9").unwrap(), Verb::Trace(9));
        assert_eq!(parse_verb("SLOWLOG").unwrap(), Verb::Slowlog(None));
        assert_eq!(parse_verb("SLOWLOG 5").unwrap(), Verb::Slowlog(Some(5)));
        assert_eq!(parse_verb("TOP").unwrap(), Verb::Top);
        assert_eq!(parse_verb("QUIT").unwrap(), Verb::Quit);
        for bad in [
            "",
            "QUERY",
            "QUERY id=1",
            "QUERY id=x graph : 1",
            "BATCH",
            "BATCH 0",
            "BATCH 99999",
            "BATCH 3 nope",
            "TRACE",
            "TRACE x",
            "SLOWLOG x",
            "NOPE x",
        ] {
            assert!(parse_verb(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ops_round_trip() {
        let mut b = RecordBuilder::new();
        b.add(EdgeId(3), 1.5).add(EdgeId(1), f64::NAN);
        let ops = [DeltaOp::Insert(b.build()), {
            let mut b = RecordBuilder::new();
            b.add(EdgeId(0), -2.25);
            DeltaOp::Update(7, b.build())
        }];
        for op in &ops {
            let text = op_to_text(op);
            let back = parse_op(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(op_to_text(&back), text);
        }
        for bad in [
            "",
            "insert",
            "update 1",
            "insert 1",
            "insert x:1",
            "frob 1:2",
        ] {
            assert!(parse_op(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn status_frames_are_single_lines() {
        let e = render_err(ErrorCode::Malformed, "bad\nframe");
        assert!(!e.contains('\n'));
        assert!(e.starts_with("ERR 110 MALFORMED"));
        assert_eq!(render_busy("queue full"), "BUSY 210 queue full");
        assert_eq!(
            render_err_id(ErrorCode::NotFound, "no trace", 12),
            "ERR 112 NOT_FOUND no trace id=12"
        );
    }
}
