#![warn(missing_docs)]

//! The comparison systems of the paper's §7.2 experiments.
//!
//! The paper compares its column-store framework against three alternative
//! ways of hosting the same graph-record collection:
//!
//! * [`RowStore`] — "a straightforward implementation that uses a commercial
//!   RDBMS and row-oriented storage for storing the graph records using
//!   triplets of record id, edge id and measure values and appropriate
//!   indexes". Rows live in a heap in insertion order; each edge id has a
//!   secondary index; a k-edge graph query runs as a chain of hash
//!   self-joins with materialized intermediates — exactly what an RDBMS
//!   does with `WHERE t1.rec = t2.rec AND …`.
//! * [`GraphDb`] — a native graph database in the Neo4j mould: each record
//!   is an adjacency structure of node/relationship objects, with a global
//!   node→records index. A query picks its most selective node, then
//!   *traverses* each candidate record checking the query edges.
//! * [`RdfStore`] — an RDF triple store: each measure is the triple
//!   `(record, edge, value)` with a dictionary-encoded object column and
//!   redundant SPO/POS index orderings; a query is a subject-subject merge
//!   join over the POS index plus dictionary dereferences.
//!
//! All three implement [`Engine`] and return bit-identical
//! [`QueryResult`]s to the column store (asserted by the cross-engine test
//! suite); what differs — deliberately — is the storage layout and join
//! strategy, which is what the paper's Figures 3–5 measure.

mod graphdb;
mod rdf;
mod row;

pub use graphdb::GraphDb;
pub use rdf::RdfStore;
pub use row::RowStore;

use graphbi_graph::{GraphQuery, PathAggQuery, PathAggResult, QueryExpr, QueryResult, RecordId};

/// A storage engine answering graph queries over a loaded record collection.
///
/// This is the one interface the differential test oracle drives: the three
/// baseline systems here, and the columnar engines (in-memory, disk,
/// sharded) wrapped by `graphbi-testkit`, all answer through it.
pub trait Engine {
    /// Human-readable system name as used in the paper's figures (for the
    /// baselines) or the engine-backend-planmode label (for the columnar
    /// matrix configurations).
    fn name(&self) -> &str;

    /// Evaluates a graph query, returning matching records with the measures
    /// of the query's edges.
    fn evaluate(&self, query: &GraphQuery) -> QueryResult;

    /// Number of records loaded.
    fn record_count(&self) -> u64;

    /// Estimated resident size in bytes, using each system's native storage
    /// overheads (documented per engine).
    fn size_in_bytes(&self) -> usize;

    /// The record set matching a logical combination of graph queries;
    /// `None` when the engine has no expression support. The default
    /// answers by set algebra over the engine's own atom match sets, so
    /// every engine with working [`Engine::evaluate`] gets expressions for
    /// free; engines with a native expression path override it.
    fn match_expr(&self, expr: &QueryExpr) -> Option<Vec<RecordId>> {
        Some(expr_records(self, expr).into_iter().collect())
    }

    /// Path aggregation; `None` when unsupported (the baselines store no
    /// pre-aggregated views and the paper does not measure them on
    /// aggregation workloads).
    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        let _ = paq;
        None
    }
}

/// Set-algebra expression evaluation over an engine's atom match sets —
/// the default body of [`Engine::match_expr`].
fn expr_records<E: Engine + ?Sized>(
    engine: &E,
    expr: &QueryExpr,
) -> std::collections::BTreeSet<RecordId> {
    match expr {
        QueryExpr::Atom(q) => engine.evaluate(q).records.into_iter().collect(),
        QueryExpr::And(a, b) => {
            let (a, b) = (expr_records(engine, a), expr_records(engine, b));
            a.intersection(&b).copied().collect()
        }
        QueryExpr::Or(a, b) => {
            let (a, b) = (expr_records(engine, a), expr_records(engine, b));
            a.union(&b).copied().collect()
        }
        QueryExpr::AndNot(a, b) => {
            let (a, b) = (expr_records(engine, a), expr_records(engine, b));
            a.difference(&b).copied().collect()
        }
    }
}

/// Sorts (record, row) pairs and flattens to a [`QueryResult`] — shared by
/// engines whose matching order is not ascending.
pub(crate) fn result_from_rows(
    edges: Vec<graphbi_graph::EdgeId>,
    mut rows: Vec<(RecordId, Vec<f64>)>,
) -> QueryResult {
    rows.sort_by_key(|&(r, _)| r);
    let mut records = Vec::with_capacity(rows.len());
    let mut measures = Vec::with_capacity(rows.len() * edges.len());
    for (r, vals) in rows {
        records.push(r);
        measures.extend(vals);
    }
    QueryResult {
        records,
        edges,
        measures,
    }
}
