//! Native graph database baseline (the Neo4j analogue).

use std::collections::HashMap;

use graphbi_graph::{EdgeId, GraphQuery, GraphRecord, NodeId, QueryResult, RecordId, Universe};

use crate::Engine;

// Per-object storage costs of a Neo4j-style native store: fixed-size node
// records, relationship records with prev/next pointers for both endpoints,
// and a property record per measure.
const NODE_BYTES: usize = 15;
const REL_BYTES: usize = 34;
const PROP_BYTES: usize = 41;

/// One stored record: a native adjacency structure.
struct StoredGraph {
    /// node → outgoing (target, measure) pairs, sorted by target.
    adjacency: HashMap<NodeId, Vec<(NodeId, f64)>>,
    node_count: usize,
    rel_count: usize,
}

impl StoredGraph {
    fn edge_measure(&self, s: NodeId, t: NodeId) -> Option<f64> {
        let outs = self.adjacency.get(&s)?;
        outs.binary_search_by_key(&t, |&(n, _)| n)
            .ok()
            .map(|i| outs[i].1)
    }
}

/// The native graph store: per-record adjacency objects plus a global
/// node→records index (the analogue of a Neo4j schema index on the node
/// name property).
///
/// A query resolves its most selective node through the index, then walks
/// each candidate record's adjacency lists verifying every query edge — the
/// pointer-chasing traversal a native store performs. Unlike the column
/// store there is no precomputed per-edge record list, so candidate sets are
/// node-level (larger) and each candidate pays a full traversal.
pub struct GraphDb {
    graphs: Vec<StoredGraph>,
    node_index: HashMap<NodeId, Vec<RecordId>>,
    /// Query edges are edge *ids*; the native store keys adjacency by node
    /// pair, so we keep the universe's endpoint table.
    endpoints: HashMap<EdgeId, (NodeId, NodeId)>,
}

impl GraphDb {
    /// Loads a record collection, resolving edge endpoints via `universe`.
    pub fn load<'a, I>(records: I, universe: &Universe) -> GraphDb
    where
        I: IntoIterator<Item = &'a GraphRecord>,
    {
        let mut graphs = Vec::new();
        let mut node_index: HashMap<NodeId, Vec<RecordId>> = HashMap::new();
        for (rid, rec) in records.into_iter().enumerate() {
            let rid = u32::try_from(rid).expect("record id fits u32");
            let mut adjacency: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
            let mut rel_count = 0usize;
            for &(e, m) in rec.edges() {
                let (s, t) = universe.endpoints(e);
                adjacency.entry(s).or_default().push((t, m));
                adjacency.entry(t).or_default();
                rel_count += 1;
            }
            for (n, outs) in adjacency.iter_mut() {
                outs.sort_by_key(|&(t, _)| t);
                node_index.entry(*n).or_default().push(rid);
            }
            graphs.push(StoredGraph {
                node_count: adjacency.len(),
                rel_count,
                adjacency,
            });
        }
        let endpoints = universe.edges().map(|(e, s, t)| (e, (s, t))).collect();
        GraphDb {
            graphs,
            node_index,
            endpoints,
        }
    }

    fn candidates(&self, node: NodeId) -> &[RecordId] {
        self.node_index.get(&node).map_or(&[], Vec::as_slice)
    }
}

impl Engine for GraphDb {
    fn name(&self) -> &str {
        "Neo4j Store"
    }

    fn evaluate(&self, query: &GraphQuery) -> QueryResult {
        let edges = query.edges().to_vec();
        if edges.is_empty() {
            return QueryResult {
                records: (0..u32::try_from(self.graphs.len()).expect("record count fits u32"))
                    .collect(),
                edges,
                measures: Vec::new(),
            };
        }
        let pairs: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|e| {
                *self
                    .endpoints
                    .get(e)
                    .unwrap_or(&(NodeId(u32::MAX), NodeId(u32::MAX)))
            })
            .collect();
        // Index lookup on the most selective query node.
        let anchor = pairs
            .iter()
            .flat_map(|&(s, t)| [s, t])
            .min_by_key(|&n| self.candidates(n).len())
            .expect("non-empty query");

        let mut rows: Vec<(RecordId, Vec<f64>)> = Vec::new();
        'cand: for &rid in self.candidates(anchor) {
            let g = &self.graphs[rid as usize];
            let mut vals = Vec::with_capacity(pairs.len());
            for &(s, t) in &pairs {
                match g.edge_measure(s, t) {
                    Some(m) => vals.push(m),
                    None => continue 'cand,
                }
            }
            rows.push((rid, vals));
        }
        crate::result_from_rows(edges, rows)
    }

    fn record_count(&self) -> u64 {
        self.graphs.len() as u64
    }

    fn size_in_bytes(&self) -> usize {
        // Node + relationship + property records, plus the node index.
        let objects: usize = self
            .graphs
            .iter()
            .map(|g| g.node_count * NODE_BYTES + g.rel_count * (REL_BYTES + PROP_BYTES))
            .sum();
        let index: usize = self.node_index.values().map(|v| v.len() * 16).sum();
        objects + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::RecordBuilder;

    fn setup() -> (Universe, Vec<GraphRecord>, Vec<EdgeId>) {
        let mut u = Universe::new();
        let ab = u.edge_by_names("A", "B");
        let bc = u.edge_by_names("B", "C");
        let cd = u.edge_by_names("C", "D");
        let mk = |edges: &[(EdgeId, f64)]| {
            let mut b = RecordBuilder::new();
            for &(e, m) in edges {
                b.add(e, m);
            }
            b.build()
        };
        let records = vec![
            mk(&[(ab, 1.0), (bc, 2.0)]),
            mk(&[(bc, 3.0), (cd, 4.0)]),
            mk(&[(ab, 5.0), (bc, 6.0), (cd, 7.0)]),
        ];
        (u, records, vec![ab, bc, cd])
    }

    #[test]
    fn traversal_finds_matches() {
        let (u, records, e) = setup();
        let db = GraphDb::load(&records, &u);
        let r = db.evaluate(&GraphQuery::from_edges(vec![e[0], e[1]]));
        assert_eq!(r.records, vec![0, 2]);
        assert_eq!(r.row(0), &[1.0, 2.0]);
        assert_eq!(r.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn anchor_choice_does_not_change_answers() {
        let (u, records, e) = setup();
        let db = GraphDb::load(&records, &u);
        // Full path query anchored anywhere gives record 2 only.
        let r = db.evaluate(&GraphQuery::from_edges(vec![e[0], e[1], e[2]]));
        assert_eq!(r.records, vec![2]);
        assert_eq!(r.row(0), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn unknown_edge_matches_nothing() {
        let (u, records, _) = setup();
        let db = GraphDb::load(&records, &u);
        let r = db.evaluate(&GraphQuery::from_edges(vec![EdgeId(999)]));
        assert!(r.is_empty());
    }

    #[test]
    fn native_store_is_the_largest() {
        let (u, records, _) = setup();
        let db = GraphDb::load(&records, &u);
        let row = crate::RowStore::load(&records);
        // Figure 4: the native graph store needs the most disk space.
        assert!(db.size_in_bytes() > row.size_in_bytes());
    }
}
