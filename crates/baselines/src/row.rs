//! Row-oriented triplet storage (the commercial-RDBMS baseline).

use std::collections::HashMap;

use graphbi_graph::{EdgeId, GraphQuery, GraphRecord, QueryResult, RecordId};

use crate::Engine;

/// Per-row storage overhead of a heap tuple in a typical row-oriented RDBMS
/// (tuple header + item pointer), charged on top of the 16-byte payload.
const ROW_OVERHEAD: usize = 24;

/// Bytes per secondary-index entry (key + row pointer in a B-tree leaf).
const INDEX_ENTRY: usize = 16;

/// One stored triplet row, as laid out in the table heap.
#[derive(Clone, Copy, Debug)]
struct Row {
    record: RecordId,
    edge: EdgeId,
    measure: f64,
}

/// The row store: a heap of `(record, edge, measure)` triplets in insertion
/// (record-major) order plus a secondary B-tree-style index from edge id to
/// *row pointers*.
///
/// Graph queries run the way an RDBMS runs a k-way self-join over an
/// edge-indexed triplet table: index-scan the rarest edge dereferencing each
/// row pointer into the heap, build a hash table per remaining edge the same
/// way, and probe, materializing the intermediate result after every join
/// step. The heap dereference per index entry and the per-step intermediate
/// materialization are what make this baseline degrade with dataset and
/// query size (Figures 3a–3b).
pub struct RowStore {
    /// The table heap, in insertion order.
    heap: Vec<Row>,
    /// Secondary index: edge id → heap positions, ascending (record order).
    index: HashMap<EdgeId, Vec<u32>>,
    record_count: u64,
}

impl RowStore {
    /// Loads a record collection.
    pub fn load<'a, I>(records: I) -> RowStore
    where
        I: IntoIterator<Item = &'a GraphRecord>,
    {
        let mut heap = Vec::new();
        let mut index: HashMap<EdgeId, Vec<u32>> = HashMap::new();
        let mut record_count = 0u64;
        for (rid, rec) in records.into_iter().enumerate() {
            let rid = u32::try_from(rid).expect("record id fits u32");
            record_count += 1;
            for &(e, m) in rec.edges() {
                index
                    .entry(e)
                    .or_default()
                    .push(u32::try_from(heap.len()).expect("row count fits u32"));
                heap.push(Row {
                    record: rid,
                    edge: e,
                    measure: m,
                });
            }
        }
        RowStore {
            heap,
            index,
            record_count,
        }
    }

    fn row_pointers(&self, e: EdgeId) -> &[u32] {
        self.index.get(&e).map_or(&[], Vec::as_slice)
    }

    /// Index scan: dereference every row pointer of `e` into the heap.
    fn index_scan(&self, e: EdgeId) -> impl Iterator<Item = Row> + '_ {
        self.row_pointers(e).iter().map(move |&p| {
            let row = self.heap[p as usize];
            debug_assert_eq!(row.edge, e);
            row
        })
    }
}

impl Engine for RowStore {
    fn name(&self) -> &str {
        "Row Store"
    }

    fn evaluate(&self, query: &GraphQuery) -> QueryResult {
        let edges = query.edges().to_vec();
        if edges.is_empty() {
            return QueryResult {
                records: (0..u32::try_from(self.record_count).expect("record count fits u32"))
                    .collect(),
                edges,
                measures: Vec::new(),
            };
        }
        // Join order: start from the most selective (fewest rows) edge, the
        // choice any cost-based optimizer makes.
        let mut order = edges.clone();
        order.sort_by_key(|&e| self.row_pointers(e).len());

        // Intermediate result: (record, measures joined so far) — the
        // column order follows `order` and is fixed up at the end.
        let mut intermediate: Vec<(RecordId, Vec<f64>)> = self
            .index_scan(order[0])
            .map(|r| (r.record, vec![r.measure]))
            .collect();
        for &e in &order[1..] {
            if intermediate.is_empty() {
                break;
            }
            // Hash-join build side: this edge's rows.
            let build: HashMap<RecordId, f64> =
                self.index_scan(e).map(|r| (r.record, r.measure)).collect();
            // Probe and materialize the next intermediate.
            let mut next = Vec::with_capacity(intermediate.len());
            for (rec, mut vals) in intermediate {
                if let Some(&m) = build.get(&rec) {
                    vals.push(m);
                    next.push((rec, vals));
                }
            }
            intermediate = next;
        }

        // Restore ascending-edge column order.
        let mut perm: Vec<usize> = (0..order.len()).collect();
        perm.sort_by_key(|&i| order[i]);
        let rows: Vec<(RecordId, Vec<f64>)> = intermediate
            .into_iter()
            .map(|(rec, vals)| (rec, perm.iter().map(|&i| vals[i]).collect()))
            .collect();
        crate::result_from_rows(edges, rows)
    }

    fn record_count(&self) -> u64 {
        self.record_count
    }

    fn size_in_bytes(&self) -> usize {
        // Heap rows (payload 16B: recid 4 + edge 4 + measure 8) + overhead,
        // plus one secondary-index entry per row.
        self.heap.len() * (16 + ROW_OVERHEAD + INDEX_ENTRY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::RecordBuilder;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn records() -> Vec<GraphRecord> {
        let mk = |edges: &[(u32, f64)]| {
            let mut b = RecordBuilder::new();
            for &(i, m) in edges {
                b.add(e(i), m);
            }
            b.build()
        };
        vec![
            mk(&[(0, 3.0), (1, 4.0), (2, 2.0)]),
            mk(&[(1, 1.0), (2, 2.0), (5, 4.0)]),
            mk(&[(3, 5.0), (5, 3.0)]),
        ]
    }

    #[test]
    fn single_edge_query() {
        let s = RowStore::load(&records());
        let r = s.evaluate(&GraphQuery::from_edges(vec![e(1)]));
        assert_eq!(r.records, vec![0, 1]);
        assert_eq!(r.measures, vec![4.0, 1.0]);
    }

    #[test]
    fn multi_edge_join() {
        let s = RowStore::load(&records());
        let r = s.evaluate(&GraphQuery::from_edges(vec![e(1), e(2)]));
        assert_eq!(r.records, vec![0, 1]);
        assert_eq!(r.row(0), &[4.0, 2.0]);
        assert_eq!(r.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn no_match_and_unknown_edge() {
        let s = RowStore::load(&records());
        assert!(s
            .evaluate(&GraphQuery::from_edges(vec![e(0), e(3)]))
            .is_empty());
        assert!(s.evaluate(&GraphQuery::from_edges(vec![e(99)])).is_empty());
    }

    #[test]
    fn empty_query_matches_all() {
        let s = RowStore::load(&records());
        let r = s.evaluate(&GraphQuery::from_edges(vec![]));
        assert_eq!(r.records, vec![0, 1, 2]);
    }

    #[test]
    fn size_grows_linearly_with_rows() {
        let rs = records();
        let s = RowStore::load(&rs);
        let per_row = 16 + ROW_OVERHEAD + INDEX_ENTRY;
        assert_eq!(s.size_in_bytes(), 8 * per_row);
    }
}
