//! RDF triple-store baseline.

use std::collections::HashMap;

use graphbi_graph::{EdgeId, GraphQuery, GraphRecord, QueryResult, RecordId};

use crate::Engine;

/// Bytes per stored triple per index ordering (three fixed-width ids).
const TRIPLE_BYTES: usize = 12;
/// Redundant index orderings a native triple store maintains (SPO/POS/OSP).
const INDEX_ORDERINGS: usize = 3;
/// Bytes per dictionary entry (value + hash-table slot).
const DICT_ENTRY: usize = 24;

/// The RDF store: each measure is the triple `(subject=record,
/// predicate=edge, object=value)`. Objects are dictionary-encoded — the
/// standard RDF-store design — and the triples are kept in three index
/// orderings; queries use the POS ordering: for each predicate, its
/// `(subject, object-id)` postings sorted by subject.
///
/// A graph query is a SPARQL basic graph pattern `?r p1 ?v1 . ?r p2 ?v2 …`:
/// a subject-subject merge join across the predicates' posting lists,
/// followed by a dictionary dereference per returned value. Triple-at-a-time
/// processing plus the dictionary indirection is the honest overhead this
/// baseline carries against the column store.
pub struct RdfStore {
    /// POS index: predicate → (subject, object id), sorted by subject.
    pos: HashMap<EdgeId, Vec<(RecordId, u32)>>,
    /// Object dictionary: id → value.
    dictionary: Vec<f64>,
    record_count: u64,
    triple_count: usize,
}

impl RdfStore {
    /// Loads a record collection.
    pub fn load<'a, I>(records: I) -> RdfStore
    where
        I: IntoIterator<Item = &'a GraphRecord>,
    {
        let mut pos: HashMap<EdgeId, Vec<(RecordId, u32)>> = HashMap::new();
        let mut dictionary: Vec<f64> = Vec::new();
        let mut dict_ids: HashMap<u64, u32> = HashMap::new();
        let mut record_count = 0u64;
        let mut triple_count = 0usize;
        for (rid, rec) in records.into_iter().enumerate() {
            let rid = u32::try_from(rid).expect("record id fits u32");
            record_count += 1;
            for &(e, m) in rec.edges() {
                let oid = *dict_ids.entry(m.to_bits()).or_insert_with(|| {
                    dictionary.push(m);
                    u32::try_from(dictionary.len() - 1).expect("dictionary fits u32")
                });
                pos.entry(e).or_default().push((rid, oid));
                triple_count += 1;
            }
        }
        RdfStore {
            pos,
            dictionary,
            record_count,
            triple_count,
        }
    }

    fn postings(&self, e: EdgeId) -> &[(RecordId, u32)] {
        self.pos.get(&e).map_or(&[], Vec::as_slice)
    }
}

impl Engine for RdfStore {
    fn name(&self) -> &str {
        "Rdf Store"
    }

    fn evaluate(&self, query: &GraphQuery) -> QueryResult {
        let edges = query.edges().to_vec();
        if edges.is_empty() {
            return QueryResult {
                records: (0..u32::try_from(self.record_count).expect("record count fits u32"))
                    .collect(),
                edges,
                measures: Vec::new(),
            };
        }
        // SPARQL BGP evaluation the way triple stores execute it: one triple
        // pattern at a time, merge-joining the next predicate's postings
        // against the *materialized* solution table of the previous
        // patterns. (A k-way simultaneous merge would be faster but is not
        // what `?r p1 ?v1 . ?r p2 ?v2 . …` plans look like in practice.)
        let mut solutions: Vec<(RecordId, Vec<u32>)> = self
            .postings(edges[0])
            .iter()
            .map(|&(s, o)| (s, vec![o]))
            .collect();
        for &e in &edges[1..] {
            if solutions.is_empty() {
                break;
            }
            let postings = self.postings(e);
            let mut next = Vec::with_capacity(solutions.len());
            let mut j = 0;
            for (s, mut bindings) in solutions {
                while j < postings.len() && postings[j].0 < s {
                    j += 1;
                }
                if j < postings.len() && postings[j].0 == s {
                    bindings.push(postings[j].1);
                    next.push((s, bindings));
                }
            }
            solutions = next;
        }
        let mut records = Vec::with_capacity(solutions.len());
        let mut measures = Vec::with_capacity(solutions.len() * edges.len());
        for (s, bindings) in solutions {
            records.push(s);
            for oid in bindings {
                // Dictionary dereference per value — RDF's extra hop.
                measures.push(self.dictionary[oid as usize]);
            }
        }
        QueryResult {
            records,
            edges,
            measures,
        }
    }

    fn record_count(&self) -> u64 {
        self.record_count
    }

    fn size_in_bytes(&self) -> usize {
        self.triple_count * TRIPLE_BYTES * INDEX_ORDERINGS + self.dictionary.len() * DICT_ENTRY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::RecordBuilder;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn records() -> Vec<GraphRecord> {
        let mk = |edges: &[(u32, f64)]| {
            let mut b = RecordBuilder::new();
            for &(i, m) in edges {
                b.add(e(i), m);
            }
            b.build()
        };
        vec![
            mk(&[(0, 3.0), (1, 4.0)]),
            mk(&[(1, 1.0), (2, 2.0)]),
            mk(&[(0, 3.0), (1, 9.0), (2, 8.0)]),
        ]
    }

    #[test]
    fn merge_join_across_predicates() {
        let s = RdfStore::load(&records());
        let r = s.evaluate(&GraphQuery::from_edges(vec![e(0), e(1)]));
        assert_eq!(r.records, vec![0, 2]);
        assert_eq!(r.row(0), &[3.0, 4.0]);
        assert_eq!(r.row(1), &[3.0, 9.0]);
    }

    #[test]
    fn dictionary_deduplicates_values() {
        let s = RdfStore::load(&records());
        // 3.0 appears twice but is stored once.
        assert_eq!(s.dictionary.iter().filter(|&&v| v == 3.0).count(), 1);
        let r = s.evaluate(&GraphQuery::from_edges(vec![e(0)]));
        assert_eq!(r.measures, vec![3.0, 3.0]);
    }

    #[test]
    fn empty_and_unknown() {
        let s = RdfStore::load(&records());
        assert!(s.evaluate(&GraphQuery::from_edges(vec![e(7)])).is_empty());
        let all = s.evaluate(&GraphQuery::from_edges(vec![]));
        assert_eq!(all.records, vec![0, 1, 2]);
    }

    #[test]
    fn triple_query_matches_single_record() {
        let s = RdfStore::load(&records());
        let r = s.evaluate(&GraphQuery::from_edges(vec![e(0), e(1), e(2)]));
        assert_eq!(r.records, vec![2]);
        assert_eq!(r.row(0), &[3.0, 9.0, 8.0]);
    }
}
