//! The virtual filesystem the store talks to.
//!
//! Every byte the persistence layer reads or writes goes through the
//! [`Vfs`] trait, so the I/O substrate is injectable: production uses
//! [`OsVfs`] (plain `std::fs`), while the crash-consistency fuzzer uses
//! [`FaultVfs`] — a deterministic in-memory filesystem that models the
//! page cache / durable storage split and injects torn writes, short
//! reads, bit flips, `ENOSPC` and lost-fsync-then-crash failures at a
//! seeded operation index.
//!
//! The fault model follows how real filesystems lose data:
//!
//! * a `write` lands in the page cache (the *volatile* layer); what of it
//!   survives a crash before the matching `fsync` is adversarial — the
//!   model persists nothing, everything, or a torn prefix, chosen by a
//!   seeded hash of the operation index;
//! * `fsync` makes the file's current content durable — unless the
//!   [`Fault::LostFsync`] fault eats it, in which case the call lies
//!   (returns `Ok`) and persists nothing, like a disk with a broken
//!   write cache;
//! * `rename` is atomic (journaled-metadata semantics). Renaming a file
//!   whose data was never fsynced is the classic application bug, and the
//!   model punishes it: the destination durably becomes either the old
//!   file or a torn prefix of the new one.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use graphbi_obs::{Counter, Histogram};
use parking_lot::Mutex;

/// Whether fetches verify the stored CRC32 of every payload they read.
///
/// [`Verify::TrustDisk`] exists for exactly one purpose: proving the
/// crash-consistency fuzzer has teeth. Disabling verification must make
/// the fuzzer's bit-flip sweep fail — if it doesn't, the harness isn't
/// actually exercising the checksums. Production code paths always use
/// [`Verify::Checksums`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verify {
    /// Verify every column/bitmap/manifest payload CRC32 on read.
    Checksums,
    /// Skip CRC verification (test-only hook; structural length and magic
    /// checks still apply).
    TrustDisk,
}

/// The filesystem interface of the persistence layer.
///
/// Paths are opaque keys; `read_range` must return exactly `len` bytes
/// (implementations may return fewer only when injecting a short read —
/// callers treat a short buffer as corruption).
pub trait Vfs: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads `len` bytes starting at `off`.
    fn read_range(&self, path: &Path, off: u64, len: u64) -> io::Result<Vec<u8>>;
    /// Creates or replaces the file with `data` (buffered; not durable
    /// until [`Vfs::fsync`]).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` at the end of the file, creating it when absent
    /// (buffered; not durable until [`Vfs::fsync`]). Unlike [`Vfs::write`]
    /// this never touches previously written bytes, so a crash mid-append
    /// can tear only the appended suffix — the WAL's durability argument
    /// rests on exactly that contract.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Flushes the file's content to durable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing any existing file.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file (missing files are not an error).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Lists the files directly under `dir` (empty when absent).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// True when the file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates `dir` and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Flushes directory metadata (new/renamed entries) to durable
    /// storage. Implementations without directory handles may no-op.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production VFS: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

/// Process-wide I/O metric handles, resolved from the global registry once
/// (the registry lock never sits on the I/O path). Latencies are log₂
/// histograms in nanoseconds; byte counters track payload volume.
struct OsVfsMetrics {
    read_ns: Arc<Histogram>,
    write_ns: Arc<Histogram>,
    fsync_ns: Arc<Histogram>,
    read_bytes: Arc<Counter>,
    write_bytes: Arc<Counter>,
}

fn os_metrics() -> &'static OsVfsMetrics {
    static METRICS: OnceLock<OsVfsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = graphbi_obs::global();
        OsVfsMetrics {
            read_ns: reg.histogram("graphbi_vfs_read_ns"),
            write_ns: reg.histogram("graphbi_vfs_write_ns"),
            fsync_ns: reg.histogram("graphbi_vfs_fsync_ns"),
            read_bytes: reg.counter("graphbi_vfs_read_bytes_total"),
            write_bytes: reg.counter("graphbi_vfs_write_bytes_total"),
        }
    })
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl Vfs for OsVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let m = os_metrics();
        let start = Instant::now();
        let data = std::fs::read(path)?;
        m.read_ns.record(elapsed_ns(start));
        m.read_bytes.add(data.len() as u64);
        Ok(data)
    }

    fn read_range(&self, path: &Path, off: u64, len: u64) -> io::Result<Vec<u8>> {
        let m = os_metrics();
        let start = Instant::now();
        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; usize::try_from(len).expect("len fits usize")];
        f.read_exact(&mut buf)?;
        m.read_ns.record(elapsed_ns(start));
        m.read_bytes.add(buf.len() as u64);
        Ok(buf)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let m = os_metrics();
        let start = Instant::now();
        let mut f = std::fs::File::create(path)?;
        f.write_all(data)?;
        m.write_ns.record(elapsed_ns(start));
        m.write_bytes.add(data.len() as u64);
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let m = os_metrics();
        let start = Instant::now();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        m.write_ns.record(elapsed_ns(start));
        m.write_bytes.add(data.len() as u64);
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let start = Instant::now();
        std::fs::File::open(path)?.sync_all()?;
        os_metrics().fsync_ns.record(elapsed_ns(start));
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            r => r,
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                let mut out = Vec::new();
                for e in entries {
                    let e = e?;
                    if e.file_type()?.is_file() {
                        out.push(e.path());
                    }
                }
                out.sort();
                Ok(out)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is best-effort: some platforms refuse to open
        // directories for syncing, which is not a store failure.
        match std::fs::File::open(dir) {
            Ok(f) => {
                let _ = f.sync_all();
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }
}

/// One injectable failure, armed at an operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The process dies before the operation executes: the op and every
    /// subsequent op fail, and unsynced writes persist adversarially.
    Crash,
    /// The write persists only a seeded prefix (durably and in the page
    /// cache), then the process dies.
    TornWrite,
    /// The write fails with `ENOSPC` after persisting a seeded prefix to
    /// the page cache; the process survives.
    Enospc,
    /// The read returns a seeded prefix of the requested bytes (once).
    ShortRead,
    /// The read returns the requested bytes with one seeded byte flipped
    /// (once).
    BitFlip,
    /// The fsync silently does nothing (returns `Ok`); the process dies
    /// at the *next* crashable operation after the save completes — see
    /// [`FaultVfs::reboot`].
    LostFsync,
}

struct FaultState {
    seed: u64,
    /// Count of faultable operations performed (read/write/fsync/rename/
    /// remove).
    ops: u64,
    /// The armed fault and the absolute op index it fires at.
    armed: Option<(Fault, u64)>,
    crashed: bool,
    /// What survives a crash.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// The live filesystem view (page cache included).
    volatile: BTreeMap<PathBuf, Vec<u8>>,
}

/// A deterministic in-memory filesystem with seeded fault injection — the
/// crash-consistency fuzzer's disk.
///
/// All state is in memory: `durable` models what survives power loss,
/// `volatile` the live view including unsynced page-cache content.
/// [`FaultVfs::fork`] clones the whole state so one baseline store can be
/// crashed at every operation index independently; [`FaultVfs::reboot`]
/// simulates power loss (drops the volatile layer) and clears the fault.
pub struct FaultVfs {
    state: Mutex<FaultState>,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn crashed_err() -> io::Error {
    io::Error::other("faultvfs: crashed")
}

impl FaultVfs {
    /// An empty in-memory filesystem whose adversarial choices derive from
    /// `seed`.
    pub fn new(seed: u64) -> FaultVfs {
        FaultVfs {
            state: Mutex::new(FaultState {
                seed,
                ops: 0,
                armed: None,
                crashed: false,
                durable: BTreeMap::new(),
                volatile: BTreeMap::new(),
            }),
        }
    }

    /// A deep copy of the current state (same seed, same op counter) —
    /// the starting point for one crash experiment.
    pub fn fork(&self) -> FaultVfs {
        let s = self.state.lock();
        FaultVfs {
            state: Mutex::new(FaultState {
                seed: s.seed,
                ops: s.ops,
                armed: s.armed,
                crashed: s.crashed,
                durable: s.durable.clone(),
                volatile: s.volatile.clone(),
            }),
        }
    }

    /// Number of faultable operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Arms `fault` to fire at absolute operation index `at` (compare
    /// with [`FaultVfs::op_count`]).
    pub fn arm(&self, fault: Fault, at: u64) {
        self.state.lock().armed = Some((fault, at));
    }

    /// Kills the process *now*: unsynced writes persist adversarially and
    /// every subsequent operation fails until [`FaultVfs::reboot`]. Used
    /// to model a crash after a save "succeeded" (e.g. following a lost
    /// fsync).
    pub fn crash(&self) {
        let mut s = self.state.lock();
        let _ = FaultVfs::die(&mut s);
    }

    /// Simulates power loss and restart: the volatile layer is replaced
    /// by the durable one, the crashed flag and any armed fault are
    /// cleared.
    pub fn reboot(&self) {
        let mut s = self.state.lock();
        s.volatile = s.durable.clone();
        s.crashed = false;
        s.armed = None;
    }

    /// Flips one bit in the durable (and volatile) copy of `path` at
    /// `offset` — corruption at rest, for checksum tests.
    pub fn corrupt_at(&self, path: &Path, offset: usize) {
        let mut s = self.state.lock();
        let s = &mut *s;
        for layer in [&mut s.durable, &mut s.volatile] {
            if let Some(data) = layer.get_mut(path) {
                if offset < data.len() {
                    data[offset] ^= 0x10;
                }
            }
        }
    }

    /// Current durable size of `path` (None when absent).
    pub fn durable_len(&self, path: &Path) -> Option<usize> {
        self.state.lock().durable.get(path).map(Vec::len)
    }

    fn die(s: &mut FaultState) -> io::Error {
        s.crashed = true;
        // Adversarial writeback: every write that was never fsynced may
        // have partially reached the platter before power loss.
        let keys: Vec<PathBuf> = s.volatile.keys().cloned().collect();
        for path in keys {
            if s.durable.get(&path) == s.volatile.get(&path) {
                continue;
            }
            let h = splitmix(s.seed ^ s.ops ^ (path.as_os_str().len() as u64) << 17);
            let content = s.volatile[&path].clone();
            // A file whose volatile content *extends* its durable content
            // (append-mode history) can lose only the unsynced suffix:
            // fsynced bytes never un-write themselves. Overwritten files
            // keep the original fully-adversarial model.
            let floor = match s.durable.get(&path) {
                Some(d) if content.starts_with(d) => d.len(),
                _ => 0,
            };
            match h % 3 {
                0 => {} // nothing new reached disk
                1 => {
                    let cut = if content.is_empty() {
                        0
                    } else {
                        (h >> 8) as usize % content.len()
                    };
                    s.durable.insert(path, content[..cut.max(floor)].to_vec());
                }
                _ => {
                    s.durable.insert(path, content);
                }
            }
        }
        crashed_err()
    }

    /// Returns the fault to inject for this op, if armed and due.
    fn step(s: &mut FaultState) -> Result<Option<Fault>, io::Error> {
        if s.crashed {
            return Err(crashed_err());
        }
        let op = s.ops;
        s.ops += 1;
        match s.armed {
            Some((fault, at)) if op == at => {
                s.armed = None;
                graphbi_obs::global()
                    .counter("graphbi_vfs_faults_total")
                    .inc();
                Ok(Some(fault))
            }
            _ => Ok(None),
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        let mut data = s
            .volatile
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "faultvfs: no such file"))?;
        let h = splitmix(s.seed ^ s.ops.wrapping_mul(0x51ed));
        match fault {
            Some(Fault::ShortRead) if !data.is_empty() => {
                data.truncate(h as usize % data.len());
            }
            Some(Fault::BitFlip) if !data.is_empty() => {
                let i = h as usize % data.len();
                data[i] ^= 1 << ((h >> 32) % 8);
            }
            Some(Fault::Crash) => return Err(FaultVfs::die(&mut s)),
            _ => {}
        }
        Ok(data)
    }

    fn read_range(&self, path: &Path, off: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        let data = s
            .volatile
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "faultvfs: no such file"))?;
        let off = usize::try_from(off).expect("offset fits usize");
        let len = usize::try_from(len).expect("len fits usize");
        if off + len > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "faultvfs: read past end of file",
            ));
        }
        let mut out = data[off..off + len].to_vec();
        let h = splitmix(s.seed ^ s.ops.wrapping_mul(0x51ed));
        match fault {
            Some(Fault::ShortRead) if !out.is_empty() => {
                out.truncate(h as usize % out.len());
            }
            Some(Fault::BitFlip) if !out.is_empty() => {
                let i = h as usize % out.len();
                out[i] ^= 1 << ((h >> 32) % 8);
            }
            Some(Fault::Crash) => return Err(FaultVfs::die(&mut s)),
            _ => {}
        }
        Ok(out)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        let h = splitmix(s.seed ^ s.ops.wrapping_mul(0xabcd));
        match fault {
            Some(Fault::TornWrite) => {
                let cut = if data.is_empty() {
                    0
                } else {
                    h as usize % data.len()
                };
                let torn = data[..cut].to_vec();
                s.volatile.insert(path.to_owned(), torn.clone());
                s.durable.insert(path.to_owned(), torn);
                s.crashed = true;
                Err(crashed_err())
            }
            Some(Fault::Enospc) => {
                let cut = if data.is_empty() {
                    0
                } else {
                    h as usize % data.len()
                };
                s.volatile.insert(path.to_owned(), data[..cut].to_vec());
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "faultvfs: no space left on device",
                ))
            }
            Some(Fault::Crash) => Err(FaultVfs::die(&mut s)),
            _ => {
                s.volatile.insert(path.to_owned(), data.to_vec());
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        let h = splitmix(s.seed ^ s.ops.wrapping_mul(0x0a99));
        let mut content = s.volatile.get(path).cloned().unwrap_or_default();
        match fault {
            Some(Fault::TornWrite) => {
                // Only the appended suffix can tear: the prior content is
                // untouched in the page cache, and `die` preserves any
                // fsynced prefix durably.
                let cut = if data.is_empty() {
                    0
                } else {
                    h as usize % data.len()
                };
                content.extend_from_slice(&data[..cut]);
                s.volatile.insert(path.to_owned(), content);
                Err(FaultVfs::die(&mut s))
            }
            Some(Fault::Enospc) => {
                let cut = if data.is_empty() {
                    0
                } else {
                    h as usize % data.len()
                };
                content.extend_from_slice(&data[..cut]);
                s.volatile.insert(path.to_owned(), content);
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "faultvfs: no space left on device",
                ))
            }
            Some(Fault::Crash) => Err(FaultVfs::die(&mut s)),
            _ => {
                content.extend_from_slice(data);
                s.volatile.insert(path.to_owned(), content);
                Ok(())
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        match fault {
            Some(Fault::LostFsync) => Ok(()), // the lie
            Some(Fault::Crash) => Err(FaultVfs::die(&mut s)),
            _ => {
                let Some(data) = s.volatile.get(path).cloned() else {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "faultvfs: fsync of missing file",
                    ));
                };
                s.durable.insert(path.to_owned(), data);
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        if matches!(fault, Some(Fault::Crash)) {
            return Err(FaultVfs::die(&mut s));
        }
        let Some(data) = s.volatile.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "faultvfs: rename of missing file",
            ));
        };
        s.volatile.insert(to.to_owned(), data.clone());
        // Journaled-metadata semantics: the rename itself is durable and
        // atomic. If the source's data was fsynced, the destination
        // durably holds it; renaming unsynced data is the classic bug and
        // durably yields the old destination or a torn prefix.
        match s.durable.remove(from) {
            Some(durable) => {
                s.durable.insert(to.to_owned(), durable);
            }
            None => {
                let h = splitmix(s.seed ^ s.ops.wrapping_mul(0x7e57));
                if h.is_multiple_of(2) {
                    let cut = if data.is_empty() {
                        0
                    } else {
                        (h >> 8) as usize % data.len()
                    };
                    s.durable.insert(to.to_owned(), data[..cut].to_vec());
                }
                // else: the old durable destination (if any) survives.
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = FaultVfs::step(&mut s)?;
        if matches!(fault, Some(Fault::Crash)) {
            return Err(FaultVfs::die(&mut s));
        }
        s.volatile.remove(path);
        // Unlink durability is adversarial: without a directory fsync the
        // entry may resurrect after a crash. Recovery must tolerate both.
        let h = splitmix(s.seed ^ s.ops.wrapping_mul(0xdead));
        if h.is_multiple_of(2) {
            s.durable.remove(path);
        }
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(crashed_err());
        }
        Ok(s.volatile
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().volatile.contains_key(path)
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        let s = self.state.lock();
        if s.crashed {
            return Err(crashed_err());
        }
        Ok(())
    }

    fn fsync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        match FaultVfs::step(&mut s)? {
            Some(Fault::Crash) => Err(FaultVfs::die(&mut s)),
            _ => Ok(()),
        }
    }
}

/// Shared handle alias used across the persistence layer.
pub type VfsHandle = Arc<dyn Vfs>;

/// The default [`OsVfs`] as a shared handle.
pub fn os_vfs() -> VfsHandle {
    Arc::new(OsVfs)
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the checksum guarding every on-disk payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn faultvfs_round_trips_and_ranges() {
        let vfs = FaultVfs::new(1);
        let p = Path::new("/db/a.bin");
        vfs.write(p, b"hello world").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"hello world");
        assert_eq!(vfs.read_range(p, 6, 5).unwrap(), b"world");
        assert!(vfs.read_range(p, 8, 10).is_err());
        assert!(vfs.exists(p));
        assert!(!vfs.exists(Path::new("/db/b.bin")));
        assert_eq!(vfs.list(Path::new("/db")).unwrap(), vec![p.to_path_buf()]);
    }

    #[test]
    fn unsynced_writes_do_not_reliably_survive_reboot() {
        // Across seeds, at least one unsynced write must vanish or tear,
        // and at least one fsynced write must always survive.
        let mut lost = false;
        for seed in 0..16u64 {
            let vfs = FaultVfs::new(seed);
            let synced = Path::new("/d/synced");
            let unsynced = Path::new("/d/unsynced");
            vfs.write(synced, b"durable-data").unwrap();
            vfs.fsync(synced).unwrap();
            vfs.write(unsynced, b"volatile-data").unwrap();
            vfs.arm(Fault::Crash, vfs.op_count());
            assert!(vfs.read(synced).is_err(), "armed crash fires");
            vfs.reboot();
            assert_eq!(vfs.read(synced).unwrap(), b"durable-data");
            match vfs.read(unsynced) {
                Ok(data) if data == b"volatile-data" => {}
                _ => lost = true,
            }
        }
        assert!(lost, "no seed ever lost an unsynced write");
    }

    #[test]
    fn rename_of_synced_file_is_atomic_and_durable() {
        let vfs = FaultVfs::new(3);
        let tmp = Path::new("/d/m.tmp");
        let fin = Path::new("/d/m");
        vfs.write(fin, b"old").unwrap();
        vfs.fsync(fin).unwrap();
        vfs.write(tmp, b"new-content").unwrap();
        vfs.fsync(tmp).unwrap();
        vfs.rename(tmp, fin).unwrap();
        vfs.arm(Fault::Crash, vfs.op_count());
        let _ = vfs.read(fin);
        vfs.reboot();
        assert_eq!(vfs.read(fin).unwrap(), b"new-content");
        assert!(!vfs.exists(tmp));
    }

    #[test]
    fn rename_of_unsynced_file_can_tear() {
        let mut torn_or_old = false;
        for seed in 0..16u64 {
            let vfs = FaultVfs::new(seed);
            let tmp = Path::new("/d/m.tmp");
            let fin = Path::new("/d/m");
            vfs.write(fin, b"old").unwrap();
            vfs.fsync(fin).unwrap();
            vfs.write(tmp, b"new-content").unwrap();
            // Missing fsync before rename: the classic bug.
            vfs.rename(tmp, fin).unwrap();
            vfs.arm(Fault::Crash, vfs.op_count());
            let _ = vfs.read(fin);
            vfs.reboot();
            let after = vfs.read(fin).ok();
            if after.as_deref() != Some(b"new-content".as_slice()) {
                torn_or_old = true;
            }
        }
        assert!(torn_or_old, "renaming unsynced data never tore");
    }

    #[test]
    fn faults_fire_once_at_their_index() {
        let vfs = FaultVfs::new(9);
        let p = Path::new("/d/f");
        vfs.write(p, b"0123456789").unwrap();
        vfs.fsync(p).unwrap();
        let at = vfs.op_count();
        vfs.arm(Fault::BitFlip, at);
        let flipped = vfs.read(p).unwrap();
        assert_ne!(flipped, b"0123456789", "bit flip changed the data");
        assert_eq!(vfs.read(p).unwrap(), b"0123456789", "one-shot fault");

        vfs.arm(Fault::ShortRead, vfs.op_count());
        let short = vfs.read(p).unwrap();
        assert!(short.len() < 10, "short read returned a prefix");

        vfs.arm(Fault::Enospc, vfs.op_count());
        let err = vfs.write(p, b"xxxx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn append_extends_and_round_trips() {
        let vfs = FaultVfs::new(21);
        let p = Path::new("/d/log");
        vfs.append(p, b"aaa").unwrap();
        vfs.append(p, b"bb").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"aaabb");
        vfs.fsync(p).unwrap();
        vfs.append(p, b"c").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"aaabbc");
    }

    #[test]
    fn fsynced_prefix_survives_torn_append_and_crash() {
        // Whatever the seed, a crash during (or after) an unsynced append
        // may lose or tear only the appended suffix — the fsynced prefix
        // is inviolable. This is the WAL's whole durability argument.
        let mut suffix_lost = false;
        for seed in 0..32u64 {
            let vfs = FaultVfs::new(seed);
            let p = Path::new("/d/wal");
            vfs.append(p, b"frame-one|").unwrap();
            vfs.fsync(p).unwrap();
            vfs.arm(Fault::TornWrite, vfs.op_count());
            assert!(vfs.append(p, b"frame-two|").is_err(), "torn append dies");
            vfs.reboot();
            let after = vfs.read(p).unwrap();
            assert!(
                after.starts_with(b"frame-one|"),
                "seed {seed}: fsynced prefix damaged: {:?}",
                String::from_utf8_lossy(&after)
            );
            assert!(after.len() <= b"frame-one|frame-two|".len());
            if after.len() < b"frame-one|frame-two|".len() {
                suffix_lost = true;
            }
        }
        assert!(suffix_lost, "no seed ever lost the unsynced suffix");
    }

    #[test]
    fn enospc_append_survives_with_torn_tail() {
        let vfs = FaultVfs::new(5);
        let p = Path::new("/d/wal");
        vfs.append(p, b"good").unwrap();
        vfs.fsync(p).unwrap();
        vfs.arm(Fault::Enospc, vfs.op_count());
        let err = vfs.append(p, b"overflow").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Process survives; the volatile tail may be torn but the file is
        // still readable and repairable by a full rewrite.
        let now = vfs.read(p).unwrap();
        assert!(now.starts_with(b"good"));
        vfs.write(p, b"good").unwrap();
        vfs.fsync(p).unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"good");
    }

    #[test]
    fn fork_isolates_state() {
        let vfs = FaultVfs::new(4);
        let p = Path::new("/d/f");
        vfs.write(p, b"base").unwrap();
        vfs.fsync(p).unwrap();
        let fork = vfs.fork();
        fork.write(p, b"forked").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"base");
        assert_eq!(fork.read(p).unwrap(), b"forked");
    }
}
