//! The MVCC write buffer: epoch-tagged record inserts and updates
//! overlaid on an immutable base generation.
//!
//! A [`DeltaStore`] is append-only — every commit gets the next *epoch*
//! and its operations are never rewritten afterwards — so any number of
//! readers can share one delta through an `Arc` and each see a stable
//! prefix: a snapshot pins an epoch `E` and every accessor here filters
//! to versions with `epoch ≤ E`. Writers keep committing past `E`
//! without disturbing pinned readers; compaction swaps in a fresh
//! (empty) delta and leaves the old `Arc` intact for whoever still
//! holds it.
//!
//! Record-id assignment: the base generation owns ids `0..base_records`;
//! inserts take consecutive ids from `base_records` upward, in commit
//! order, so replaying the same operations against the same base always
//! reproduces the same ids. Updates replace the *whole* record content
//! (last version ≤ E wins) and may target base rows or earlier inserts.

use std::collections::BTreeMap;

use graphbi_bitmap::{Bitmap, RecordId};
use graphbi_graph::GraphRecord;
use parking_lot::Mutex;

/// One buffered write: a whole-record insert or whole-record replacement.
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// Appends a new record; its id is assigned on apply
    /// (`base_records + number of prior inserts`).
    Insert(GraphRecord),
    /// Replaces the full content of an existing record (base or
    /// previously inserted).
    Update(RecordId, GraphRecord),
}

struct DeltaInner {
    /// Last committed epoch (0 = nothing committed since the base).
    epoch: u64,
    /// Version chains in ascending record-id order; each chain is in
    /// ascending epoch order. Inserted rows get a chain too (their first
    /// version is the insert itself).
    versions: BTreeMap<RecordId, Vec<(u64, GraphRecord)>>,
    /// Commit epoch of each insert, in record-id order
    /// (`insert_epochs[k]` belongs to record `base_records + k`).
    /// Non-decreasing, so visibility counts are a partition point.
    insert_epochs: Vec<u64>,
}

/// An epoch-tagged, append-only buffer of record inserts and updates.
pub struct DeltaStore {
    base_records: u64,
    inner: Mutex<DeltaInner>,
}

impl DeltaStore {
    /// An empty delta over a base generation of `base_records` records,
    /// starting at epoch 0.
    pub fn new(base_records: u64) -> DeltaStore {
        DeltaStore::with_epoch(base_records, 0)
    }

    /// An empty delta whose epoch counter resumes at `epoch` — used after
    /// compaction (the fold watermark) and by WAL replay.
    pub fn with_epoch(base_records: u64, epoch: u64) -> DeltaStore {
        DeltaStore {
            base_records,
            inner: Mutex::new(DeltaInner {
                epoch,
                versions: BTreeMap::new(),
                insert_epochs: Vec::new(),
            }),
        }
    }

    /// Record count of the underlying base generation.
    pub fn base_records(&self) -> u64 {
        self.base_records
    }

    /// The last committed epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Applies one commit at the next epoch and returns that epoch.
    ///
    /// # Panics
    /// When an update targets a record id that exists neither in the base
    /// nor among the inserts applied so far (including earlier ops of the
    /// same commit).
    pub fn apply(&self, ops: &[DeltaOp]) -> u64 {
        let mut inner = self.inner.lock();
        let epoch = inner.epoch + 1;
        self.apply_locked(&mut inner, epoch, ops);
        epoch
    }

    /// Replay path: applies a commit at an explicit epoch. Commits at or
    /// below the current epoch are skipped (idempotent re-replay) and
    /// reported as `false`.
    pub fn apply_at(&self, epoch: u64, ops: &[DeltaOp]) -> bool {
        let mut inner = self.inner.lock();
        if epoch <= inner.epoch {
            return false;
        }
        self.apply_locked(&mut inner, epoch, ops);
        true
    }

    fn apply_locked(&self, inner: &mut DeltaInner, epoch: u64, ops: &[DeltaOp]) {
        for op in ops {
            match op {
                DeltaOp::Insert(rec) => {
                    let rid = self.base_records + inner.insert_epochs.len() as u64;
                    let rid = u32::try_from(rid).expect("record id fits u32");
                    inner.insert_epochs.push(epoch);
                    inner
                        .versions
                        .entry(rid)
                        .or_default()
                        .push((epoch, rec.clone()));
                }
                DeltaOp::Update(rid, rec) => {
                    let known = self.base_records + inner.insert_epochs.len() as u64;
                    assert!(
                        u64::from(*rid) < known,
                        "update of unknown record {rid} (known: 0..{known})"
                    );
                    inner
                        .versions
                        .entry(*rid)
                        .or_default()
                        .push((epoch, rec.clone()));
                }
            }
        }
        inner.epoch = epoch;
    }

    /// Total record count visible at `epoch`: the base plus every insert
    /// committed at or before it.
    pub fn record_count_at(&self, epoch: u64) -> u64 {
        let inner = self.inner.lock();
        self.base_records + inner.insert_epochs.partition_point(|&e| e <= epoch) as u64
    }

    /// Base record ids superseded by a delta version at or before `epoch`
    /// — the mask the structural phase subtracts from base match sets.
    pub fn touched_base_at(&self, epoch: u64) -> Bitmap {
        let inner = self.inner.lock();
        let mut out = Bitmap::new();
        for (&rid, chain) in &inner.versions {
            if u64::from(rid) >= self.base_records {
                break; // BTreeMap is ordered: inserts follow all base rows
            }
            if chain.first().is_some_and(|&(e, _)| e <= epoch) {
                out.insert(rid);
            }
        }
        out
    }

    /// Visits every delta-owned record visible at `epoch` — updated base
    /// rows and inserts alike — in ascending record-id order, with its
    /// latest content at or before that epoch.
    pub fn for_each_visible_at(&self, epoch: u64, mut f: impl FnMut(RecordId, &GraphRecord)) {
        let inner = self.inner.lock();
        for (&rid, chain) in &inner.versions {
            if let Some((_, rec)) = chain.iter().rev().find(|&&(e, _)| e <= epoch) {
                f(rid, rec);
            }
        }
    }

    /// Latest visible content of `rid` at `epoch`, when the delta owns a
    /// version of it (base rows without updates return `None`).
    pub fn visible_record_at(&self, epoch: u64, rid: RecordId) -> Option<GraphRecord> {
        let inner = self.inner.lock();
        inner
            .versions
            .get(&rid)?
            .iter()
            .rev()
            .find(|&&(e, _)| e <= epoch)
            .map(|(_, rec)| rec.clone())
    }

    /// True when no commit at or before `epoch` is buffered.
    pub fn is_empty_at(&self, epoch: u64) -> bool {
        let inner = self.inner.lock();
        !inner
            .versions
            .values()
            .any(|chain| chain.first().is_some_and(|&(e, _)| e <= epoch))
    }

    /// Buffered version count (all epochs) — the compaction trigger's
    /// input.
    pub fn version_count(&self) -> usize {
        self.inner.lock().versions.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint of the buffered versions.
    pub fn size_in_bytes(&self) -> usize {
        let inner = self.inner.lock();
        let records: usize = inner
            .versions
            .values()
            .flat_map(|chain| chain.iter())
            .map(|(_, rec)| {
                std::mem::size_of::<(u64, GraphRecord)>()
                    + rec.edges().len() * std::mem::size_of::<(u32, f64)>()
            })
            .sum();
        records + inner.insert_epochs.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{EdgeId, RecordBuilder};

    fn rec(pairs: &[(u32, f64)]) -> GraphRecord {
        let mut b = RecordBuilder::new();
        for &(e, m) in pairs {
            b.add(EdgeId(e), m);
        }
        b.build()
    }

    #[test]
    fn inserts_take_consecutive_ids_and_epochs_gate_visibility() {
        let d = DeltaStore::new(10);
        let e1 = d.apply(&[DeltaOp::Insert(rec(&[(0, 1.0)]))]);
        let e2 = d.apply(&[
            DeltaOp::Insert(rec(&[(1, 2.0)])),
            DeltaOp::Insert(rec(&[(2, 3.0)])),
        ]);
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(d.record_count_at(0), 10);
        assert_eq!(d.record_count_at(e1), 11);
        assert_eq!(d.record_count_at(e2), 13);
        let mut seen = Vec::new();
        d.for_each_visible_at(e1, |rid, _| seen.push(rid));
        assert_eq!(seen, vec![10]);
        seen.clear();
        d.for_each_visible_at(e2, |rid, _| seen.push(rid));
        assert_eq!(seen, vec![10, 11, 12]);
    }

    #[test]
    fn updates_supersede_and_last_version_wins() {
        let d = DeltaStore::new(5);
        let e1 = d.apply(&[DeltaOp::Update(2, rec(&[(7, 1.0)]))]);
        let e2 = d.apply(&[DeltaOp::Update(2, rec(&[(7, 9.0)]))]);
        assert_eq!(d.touched_base_at(0).to_vec(), Vec::<u32>::new());
        assert_eq!(d.touched_base_at(e1).to_vec(), vec![2]);
        assert_eq!(
            d.visible_record_at(e1, 2).unwrap().measure(EdgeId(7)),
            Some(1.0)
        );
        assert_eq!(
            d.visible_record_at(e2, 2).unwrap().measure(EdgeId(7)),
            Some(9.0)
        );
        assert!(d.visible_record_at(e1, 3).is_none());
    }

    #[test]
    fn update_of_prior_insert_is_not_a_base_touch() {
        let d = DeltaStore::new(3);
        let e1 = d.apply(&[DeltaOp::Insert(rec(&[(0, 1.0)]))]);
        let e2 = d.apply(&[DeltaOp::Update(3, rec(&[(0, 2.0)]))]);
        assert!(d.touched_base_at(e2).is_empty());
        assert_eq!(
            d.visible_record_at(e2, 3).unwrap().measure(EdgeId(0)),
            Some(2.0)
        );
        assert_eq!(
            d.visible_record_at(e1, 3).unwrap().measure(EdgeId(0)),
            Some(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "update of unknown record")]
    fn update_of_unknown_record_panics() {
        DeltaStore::new(2).apply(&[DeltaOp::Update(5, rec(&[(0, 1.0)]))]);
    }

    #[test]
    fn replay_is_idempotent() {
        let d = DeltaStore::with_epoch(4, 7);
        assert!(!d.apply_at(7, &[DeltaOp::Insert(rec(&[(0, 1.0)]))]));
        assert!(d.apply_at(8, &[DeltaOp::Insert(rec(&[(0, 1.0)]))]));
        assert!(!d.apply_at(8, &[DeltaOp::Insert(rec(&[(0, 1.0)]))]));
        assert_eq!(d.record_count_at(8), 5);
        assert_eq!(d.epoch(), 8);
    }
}
