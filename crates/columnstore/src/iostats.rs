//! Cost-model counters.
//!
//! §5.1: "we utilize a simple but reasonable cost model, where the cost of
//! fetching the bitmaps for a query is proportional to the number of bitmaps
//! used in the formulation of the query". The engine threads an [`IoStats`]
//! through every fetch so experiments can report the model cost next to
//! wall-clock time.

/// Per-query (or per-workload) fetch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Base edge bitmap columns (`b_i`) fetched.
    pub bitmap_columns: u64,
    /// Graph-view bitmap columns (`b_v`) fetched.
    pub view_bitmap_columns: u64,
    /// Base measure columns (`m_i`) fetched.
    pub measure_columns: u64,
    /// Aggregate-view measure columns (`m_p`, with their `b_p`) fetched.
    pub agg_view_columns: u64,
    /// Individual measure values materialized into result rows.
    pub values_fetched: u64,
    /// Vertical partitions touched — each one beyond the first implies a
    /// recid join between sub-relations (§6.1, Figure 5).
    pub partitions_touched: u64,
    /// Rows passed through recid joins when assembling multi-partition
    /// results.
    pub join_rows: u64,
    /// Column reads served from disk (disk-resident stores only; cache hits
    /// don't count).
    pub disk_reads: u64,
    /// Bytes read from disk.
    pub disk_bytes: u64,
    /// Measure fetches the planner proved unnecessary and skipped (the
    /// structural result was already empty, so no row could reference the
    /// column). Counted identically by serial and sharded plans — skipping
    /// depends only on the structural result, never on the shard split.
    pub fetches_skipped: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total *bitmap* columns fetched — the paper's structural-condition
    /// cost, the quantity view selection minimizes.
    pub fn structural_columns(&self) -> u64 {
        self.bitmap_columns + self.view_bitmap_columns
    }

    /// Total columns of any kind fetched.
    pub fn total_columns(&self) -> u64 {
        self.bitmap_columns
            + self.view_bitmap_columns
            + self.measure_columns
            + self.agg_view_columns
    }

    /// Accumulates another stats block (for workload-level or per-shard
    /// totals). The operation is associative and commutative — merging
    /// shard-local counters in any order yields the same total — which is
    /// what lets parallel shard execution combine its results safely.
    /// Saturates instead of overflowing: long-running accumulators (fuzz
    /// loops, daemon-style workloads) must never panic in debug builds or
    /// silently wrap in release builds.
    pub fn merge(&mut self, other: &IoStats) {
        self.bitmap_columns = self.bitmap_columns.saturating_add(other.bitmap_columns);
        self.view_bitmap_columns = self
            .view_bitmap_columns
            .saturating_add(other.view_bitmap_columns);
        self.measure_columns = self.measure_columns.saturating_add(other.measure_columns);
        self.agg_view_columns = self.agg_view_columns.saturating_add(other.agg_view_columns);
        self.values_fetched = self.values_fetched.saturating_add(other.values_fetched);
        self.partitions_touched = self
            .partitions_touched
            .saturating_add(other.partitions_touched);
        self.join_rows = self.join_rows.saturating_add(other.join_rows);
        self.disk_reads = self.disk_reads.saturating_add(other.disk_reads);
        self.disk_bytes = self.disk_bytes.saturating_add(other.disk_bytes);
        self.fetches_skipped = self.fetches_skipped.saturating_add(other.fetches_skipped);
    }
}

/// A thread-safe [`IoStats`] accumulator for parallel workers.
///
/// Each field is an atomic counter; [`SharedIoStats::record`] adds a whole
/// stats block with relaxed ordering (totals only — no inter-field ordering
/// is promised until [`SharedIoStats::snapshot`] is taken after the workers
/// join). Like [`IoStats::merge`], addition saturates.
#[derive(Debug, Default)]
pub struct SharedIoStats {
    cells: [std::sync::atomic::AtomicU64; 10],
}

impl SharedIoStats {
    /// Fresh zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter of `stats` to the shared totals.
    pub fn record(&self, stats: &IoStats) {
        use std::sync::atomic::Ordering::Relaxed;
        let fields = [
            stats.bitmap_columns,
            stats.view_bitmap_columns,
            stats.measure_columns,
            stats.agg_view_columns,
            stats.values_fetched,
            stats.partitions_touched,
            stats.join_rows,
            stats.disk_reads,
            stats.disk_bytes,
            stats.fetches_skipped,
        ];
        for (cell, v) in self.cells.iter().zip(fields) {
            // fetch_update with saturating_add: mirrors `IoStats::merge`.
            let _ = cell.fetch_update(Relaxed, Relaxed, |cur| Some(cur.saturating_add(v)));
        }
    }

    /// The accumulated totals.
    pub fn snapshot(&self) -> IoStats {
        use std::sync::atomic::Ordering::Relaxed;
        let c = &self.cells;
        IoStats {
            bitmap_columns: c[0].load(Relaxed),
            view_bitmap_columns: c[1].load(Relaxed),
            measure_columns: c[2].load(Relaxed),
            agg_view_columns: c[3].load(Relaxed),
            values_fetched: c[4].load(Relaxed),
            partitions_touched: c[5].load(Relaxed),
            join_rows: c[6].load(Relaxed),
            disk_reads: c[7].load(Relaxed),
            disk_bytes: c[8].load(Relaxed),
            fetches_skipped: c[9].load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = IoStats {
            bitmap_columns: 3,
            view_bitmap_columns: 1,
            measure_columns: 2,
            agg_view_columns: 1,
            values_fetched: 100,
            partitions_touched: 2,
            join_rows: 40,
            disk_reads: 5,
            disk_bytes: 4096,
            fetches_skipped: 1,
        };
        assert_eq!(a.structural_columns(), 4);
        assert_eq!(a.total_columns(), 7);
        let b = a;
        a.merge(&b);
        assert_eq!(a.bitmap_columns, 6);
        assert_eq!(a.values_fetched, 200);
    }

    #[test]
    fn merge_saturates_at_u64_max() {
        let mut a = IoStats {
            disk_bytes: u64::MAX - 10,
            values_fetched: u64::MAX,
            ..IoStats::new()
        };
        let b = IoStats {
            disk_bytes: 100,
            values_fetched: 1,
            bitmap_columns: 7,
            ..IoStats::new()
        };
        a.merge(&b);
        assert_eq!(a.disk_bytes, u64::MAX);
        assert_eq!(a.values_fetched, u64::MAX);
        assert_eq!(a.bitmap_columns, 7, "unsaturated fields still add");
    }

    #[test]
    fn merge_is_associative() {
        let blocks = [
            IoStats {
                bitmap_columns: 3,
                values_fetched: 10,
                ..IoStats::new()
            },
            IoStats {
                measure_columns: 2,
                disk_reads: u64::MAX - 1,
                ..IoStats::new()
            },
            IoStats {
                disk_reads: 7,
                join_rows: 5,
                ..IoStats::new()
            },
        ];
        // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c))
        let mut left = blocks[0];
        left.merge(&blocks[1]);
        left.merge(&blocks[2]);
        let mut bc = blocks[1];
        bc.merge(&blocks[2]);
        let mut right = blocks[0];
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_adds_skipped_fetches() {
        let mut a = IoStats {
            fetches_skipped: 3,
            ..IoStats::new()
        };
        a.merge(&IoStats {
            fetches_skipped: 4,
            ..IoStats::new()
        });
        assert_eq!(a.fetches_skipped, 7);
        let shared = SharedIoStats::new();
        shared.record(&a);
        assert_eq!(shared.snapshot().fetches_skipped, 7);
    }

    #[test]
    fn shared_stats_accumulate_across_threads() {
        let shared = SharedIoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        shared.record(&IoStats {
                            bitmap_columns: 1,
                            disk_bytes: 3,
                            ..IoStats::new()
                        });
                    }
                });
            }
        });
        let total = shared.snapshot();
        assert_eq!(total.bitmap_columns, 400);
        assert_eq!(total.disk_bytes, 1200);
    }
}
