//! Cost-model counters.
//!
//! §5.1: "we utilize a simple but reasonable cost model, where the cost of
//! fetching the bitmaps for a query is proportional to the number of bitmaps
//! used in the formulation of the query". The engine threads an [`IoStats`]
//! through every fetch so experiments can report the model cost next to
//! wall-clock time.

/// Per-query (or per-workload) fetch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Base edge bitmap columns (`b_i`) fetched.
    pub bitmap_columns: u64,
    /// Graph-view bitmap columns (`b_v`) fetched.
    pub view_bitmap_columns: u64,
    /// Base measure columns (`m_i`) fetched.
    pub measure_columns: u64,
    /// Aggregate-view measure columns (`m_p`, with their `b_p`) fetched.
    pub agg_view_columns: u64,
    /// Individual measure values materialized into result rows.
    pub values_fetched: u64,
    /// Vertical partitions touched — each one beyond the first implies a
    /// recid join between sub-relations (§6.1, Figure 5).
    pub partitions_touched: u64,
    /// Rows passed through recid joins when assembling multi-partition
    /// results.
    pub join_rows: u64,
    /// Column reads served from disk (disk-resident stores only; cache hits
    /// don't count).
    pub disk_reads: u64,
    /// Bytes read from disk.
    pub disk_bytes: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total *bitmap* columns fetched — the paper's structural-condition
    /// cost, the quantity view selection minimizes.
    pub fn structural_columns(&self) -> u64 {
        self.bitmap_columns + self.view_bitmap_columns
    }

    /// Total columns of any kind fetched.
    pub fn total_columns(&self) -> u64 {
        self.bitmap_columns
            + self.view_bitmap_columns
            + self.measure_columns
            + self.agg_view_columns
    }

    /// Accumulates another stats block (for workload-level totals).
    /// Saturates instead of overflowing: long-running accumulators (fuzz
    /// loops, daemon-style workloads) must never panic in debug builds or
    /// silently wrap in release builds.
    pub fn absorb(&mut self, other: &IoStats) {
        self.bitmap_columns = self.bitmap_columns.saturating_add(other.bitmap_columns);
        self.view_bitmap_columns = self
            .view_bitmap_columns
            .saturating_add(other.view_bitmap_columns);
        self.measure_columns = self.measure_columns.saturating_add(other.measure_columns);
        self.agg_view_columns = self.agg_view_columns.saturating_add(other.agg_view_columns);
        self.values_fetched = self.values_fetched.saturating_add(other.values_fetched);
        self.partitions_touched = self
            .partitions_touched
            .saturating_add(other.partitions_touched);
        self.join_rows = self.join_rows.saturating_add(other.join_rows);
        self.disk_reads = self.disk_reads.saturating_add(other.disk_reads);
        self.disk_bytes = self.disk_bytes.saturating_add(other.disk_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_absorb() {
        let mut a = IoStats {
            bitmap_columns: 3,
            view_bitmap_columns: 1,
            measure_columns: 2,
            agg_view_columns: 1,
            values_fetched: 100,
            partitions_touched: 2,
            join_rows: 40,
            disk_reads: 5,
            disk_bytes: 4096,
        };
        assert_eq!(a.structural_columns(), 4);
        assert_eq!(a.total_columns(), 7);
        let b = a;
        a.absorb(&b);
        assert_eq!(a.bitmap_columns, 6);
        assert_eq!(a.values_fetched, 200);
    }

    #[test]
    fn absorb_saturates_at_u64_max() {
        let mut a = IoStats {
            disk_bytes: u64::MAX - 10,
            values_fetched: u64::MAX,
            ..IoStats::new()
        };
        let b = IoStats {
            disk_bytes: 100,
            values_fetched: 1,
            bitmap_columns: 7,
            ..IoStats::new()
        };
        a.absorb(&b);
        assert_eq!(a.disk_bytes, u64::MAX);
        assert_eq!(a.values_fetched, u64::MAX);
        assert_eq!(a.bitmap_columns, 7, "unsaturated fields still add");
    }
}
