//! A byte-budgeted LRU cache for decoded columns.
//!
//! The disk-resident store ([`crate::disk`]) caches whole decoded columns —
//! the column is the paper's unit of I/O, so caching at that granularity
//! makes the cost model's "columns fetched" equal "cache misses" under a
//! cold cache.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

use graphbi_obs::Counter;

/// Least-recently-used cache with a byte capacity.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, Slot<V>>,
    /// recency tick → key; the smallest tick is the eviction victim.
    recency: BTreeMap<u64, K>,
    tick: u64,
    used: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Process-wide metric handles (see `graphbi_obs::global`), resolved
    /// once at construction so the hot path is a plain atomic add. The
    /// metrics aggregate across every cache instance; the per-instance
    /// counters above stay authoritative for `IoStats` reconciliation.
    m_hits: Arc<Counter>,
    m_misses: Arc<Counter>,
    m_evictions: Arc<Counter>,
}

struct Slot<V> {
    value: Arc<V>,
    size: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` bytes of values.
    pub fn new(capacity: usize) -> Self {
        let reg = graphbi_obs::global();
        LruCache {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            used: 0,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            m_hits: reg.counter("graphbi_cache_hits_total"),
            m_misses: reg.counter("graphbi_cache_misses_total"),
            m_evictions: reg.counter("graphbi_cache_evictions_total"),
        }
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.tick);
                slot.tick = tick;
                self.recency.insert(tick, key.clone());
                self.hits += 1;
                self.m_hits.inc();
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses += 1;
                self.m_misses.inc();
                None
            }
        }
    }

    /// Inserts `value` of `size` bytes, evicting least-recently-used entries
    /// until it fits. Values larger than the whole capacity are returned
    /// uncached. Returns a handle to the (possibly cached) value.
    pub fn insert(&mut self, key: K, value: V, size: usize) -> Arc<V> {
        let value = Arc::new(value);
        if size > self.capacity {
            return value;
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
            self.used -= old.size;
        }
        while self.used + size > self.capacity {
            let Some((&victim_tick, _)) = self.recency.iter().next() else {
                break;
            };
            let victim = self.recency.remove(&victim_tick).expect("tick listed");
            let slot = self.map.remove(&victim).expect("victim cached");
            self.used -= slot.size;
            self.evictions += 1;
            self.m_evictions.inc();
        }
        self.tick += 1;
        self.recency.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                size,
                tick: self.tick,
            },
        );
        self.used += size;
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// `(hits, misses)` since creation or the last [`LruCache::clear`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries evicted to make room since creation or the last
    /// [`LruCache::clear`] (oversized bypasses and replacements are not
    /// evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every entry and resets the hit/miss/eviction counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.used = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_recency() {
        let mut c: LruCache<u32, String> = LruCache::new(100);
        assert!(c.get(&1).is_none());
        c.insert(1, "a".into(), 40);
        c.insert(2, "b".into(), 40);
        assert_eq!(c.get(&1).as_deref().map(String::as_str), Some("a"));
        // Inserting 3 (40B) must evict the LRU — key 2, since 1 was touched.
        c.insert(3, "c".into(), 40);
        assert!(c.get(&2).is_none());
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (3, 2));
    }

    #[test]
    fn oversized_values_bypass_the_cache() {
        let mut c: LruCache<u32, Vec<u8>> = LruCache::new(10);
        let v = c.insert(1, vec![0; 100], 100);
        assert_eq!(v.len(), 100);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn reinserting_replaces_and_reaccounts() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 10, 60);
        c.insert(1, 20, 30);
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(*c.get(&1).unwrap(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_frees_enough_for_large_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        for k in 0..5 {
            c.insert(k, k, 20);
        }
        assert_eq!(c.len(), 5);
        c.insert(9, 9, 90);
        assert!(c.get(&9).is_some());
        assert!(c.used_bytes() <= 100);
        assert!(c.len() <= 2);
        assert_eq!(c.evictions(), 5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.evictions(), 0);
    }
}
