//! Disk-resident column access with an LRU column cache.
//!
//! The paper runs its experiments off a single HDD with cold caches —
//! "enabling processing of graph data that is orders of magnitude larger
//! than the available memory". [`DiskRelation`] reproduces that regime: the
//! relation stays on disk in the [`crate::persist`] layout, every bitmap or
//! measure column is fetched by an explicit ranged read when first needed,
//! and a byte-budgeted [`LruCache`] stands in for
//! the buffer pool. Under a cold cache, [`IoStats::disk_reads`] equals the
//! cost model's "columns fetched" — the paper's metric, made literal.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, Bytes};
use graphbi_bitmap::Bitmap;
use graphbi_graph::EdgeId;
use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::column::SparseColumn;
use crate::iostats::IoStats;
use crate::StoreError;

/// Cache key: which column of which kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ColKey {
    /// An edge's presence bitmap `b_i`.
    EdgeBitmap(u32),
    /// An edge's full measure column `m_i` (bitmap + values).
    EdgeColumn(u32),
    /// A graph-view bitmap `b_v`.
    ViewBitmap(u32),
    /// An aggregate-view column `(m_p, b_p)`.
    AggColumn(u32),
}

/// Cached payload.
enum Payload {
    Bitmap(Bitmap),
    Column(SparseColumn),
}

impl Payload {
    fn bitmap(&self) -> &Bitmap {
        match self {
            Payload::Bitmap(b) => b,
            Payload::Column(c) => c.presence(),
        }
    }

    fn column(&self) -> &SparseColumn {
        match self {
            Payload::Column(c) => c,
            Payload::Bitmap(_) => unreachable!("bitmap payload used as column"),
        }
    }

    fn size(&self) -> usize {
        match self {
            Payload::Bitmap(b) => b.size_in_bytes(),
            Payload::Column(c) => c.size_in_bytes(),
        }
    }
}

/// Byte location of one column's blocks within a partition file.
#[derive(Clone, Copy, Debug)]
struct ColumnLoc {
    partition: u32,
    bitmap_off: u64,
    bitmap_len: u64,
    values_len: u64,
}

/// A shared handle to a fetched bitmap. Clones share the payload, keeping it
/// alive across cache evictions — batch executors hold one handle per
/// distinct column instead of re-fetching per query.
#[derive(Clone)]
pub struct BitmapRef(Arc<Payload>);

impl std::ops::Deref for BitmapRef {
    type Target = Bitmap;
    fn deref(&self) -> &Bitmap {
        self.0.bitmap()
    }
}

/// A shared handle to a fetched measure column (see [`BitmapRef`] on
/// cloning).
#[derive(Clone)]
pub struct ColumnRef(Arc<Payload>);

impl std::ops::Deref for ColumnRef {
    type Target = SparseColumn;
    fn deref(&self) -> &SparseColumn {
        self.0.column()
    }
}

/// The master relation, resident on disk.
pub struct DiskRelation {
    dir: PathBuf,
    record_count: u64,
    edge_count: usize,
    partition_width: usize,
    columns: Vec<ColumnLoc>,
    /// Byte ranges of the graph-view bitmaps inside `views.gbi`.
    view_locs: Vec<(u64, u64)>,
    /// Byte ranges of the aggregate-view columns inside `views.gbi`.
    agg_locs: Vec<(u64, u64)>,
    cache: Mutex<LruCache<ColKey, Payload>>,
}

impl DiskRelation {
    /// Opens a relation directory written by [`crate::persist::save`],
    /// reading only the file directories (headers); column data stays on
    /// disk until fetched. `cache_bytes` bounds the decoded-column cache.
    pub fn open(dir: &Path, cache_bytes: usize) -> Result<DiskRelation, StoreError> {
        let manifest = std::fs::read(dir.join("manifest.gbi"))?;
        let mut m = Bytes::from(manifest);
        if m.remaining() < 20 {
            return Err(StoreError::Format("manifest too short"));
        }
        if m.get_u32_le() != super::persist::MANIFEST_MAGIC {
            return Err(StoreError::Format("bad manifest magic"));
        }
        let record_count = m.get_u64_le();
        let edge_count = m.get_u32_le() as usize;
        let partition_width = m.get_u32_le() as usize;
        if partition_width == 0 {
            return Err(StoreError::Format("zero partition width"));
        }

        let mut columns = Vec::with_capacity(edge_count);
        let parts = edge_count.div_ceil(partition_width).max(1);
        for p in 0..parts {
            let mut f = File::open(dir.join(format!("part_{p:04}.gbi")))?;
            let mut head = [0u8; 4];
            f.read_exact(&mut head)?;
            let n = u32::from_le_bytes(head) as usize;
            let mut directory = vec![0u8; n * 16];
            f.read_exact(&mut directory)?;
            let mut buf = Bytes::from(directory);
            let mut offset = 4 + (n as u64) * 16;
            for _ in 0..n {
                let bitmap_len = buf.get_u64_le();
                let values_len = buf.get_u64_le();
                columns.push(ColumnLoc {
                    partition: u32::try_from(p).expect("partition fits u32"),
                    bitmap_off: offset,
                    bitmap_len,
                    values_len,
                });
                offset += bitmap_len + values_len;
            }
        }
        if columns.len() != edge_count {
            return Err(StoreError::Format("column count mismatch"));
        }

        // View directory: lengths only; offsets accumulate.
        let mut view_locs = Vec::new();
        let mut agg_locs = Vec::new();
        let views_path = dir.join("views.gbi");
        if views_path.exists() {
            let bytes = std::fs::read(&views_path)?;
            let total = bytes.len() as u64;
            let mut buf = Bytes::from(bytes);
            if buf.remaining() < 4 {
                return Err(StoreError::Format("views file too short"));
            }
            let nviews = buf.get_u32_le();
            let mut offset = 4u64;
            for _ in 0..nviews {
                if buf.remaining() < 8 {
                    return Err(StoreError::Format("view directory truncated"));
                }
                let len = buf.get_u64_le();
                offset += 8;
                view_locs.push((offset, len));
                offset += len;
                if len > total || offset > total {
                    return Err(StoreError::Format("view block out of range"));
                }
                buf.advance(usize::try_from(len).expect("len fits usize"));
            }
            if buf.remaining() < 4 {
                return Err(StoreError::Format("agg view count missing"));
            }
            let naggs = buf.get_u32_le();
            offset += 4;
            for _ in 0..naggs {
                if buf.remaining() < 8 {
                    return Err(StoreError::Format("agg view directory truncated"));
                }
                let len = buf.get_u64_le();
                offset += 8;
                agg_locs.push((offset, len));
                offset += len;
                if len > total || offset > total {
                    return Err(StoreError::Format("agg view block out of range"));
                }
                buf.advance(usize::try_from(len).expect("len fits usize"));
            }
        }

        Ok(DiskRelation {
            dir: dir.to_owned(),
            record_count,
            edge_count,
            partition_width,
            columns,
            view_locs,
            agg_locs,
            cache: Mutex::new(LruCache::new(cache_bytes)),
        })
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of edge columns.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of materialized graph views on disk.
    pub fn view_count(&self) -> usize {
        self.view_locs.len()
    }

    /// Number of materialized aggregate views on disk.
    pub fn agg_view_count(&self) -> usize {
        self.agg_locs.len()
    }

    /// Sub-relation of `edge`.
    pub fn partition_of(&self, edge: EdgeId) -> usize {
        edge.index() / self.partition_width
    }

    /// The horizontal record shards for an `shards`-way parallel scan (see
    /// [`crate::shard_ranges`]).
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<u32>> {
        crate::relation::shard_ranges(self.record_count, shards)
    }

    /// `(cache hits, cache misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }

    /// Empties the buffer pool — the "cold system" of the paper's runs.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    fn read_range(&self, path: &Path, off: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; usize::try_from(len).expect("len fits usize")];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn fetch(
        &self,
        key: ColKey,
        stats: &mut IoStats,
        load: impl FnOnce(&Self, &mut IoStats) -> Result<Payload, StoreError>,
    ) -> Result<Arc<Payload>, StoreError> {
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(hit);
        }
        let payload = load(self, stats)?;
        let size = payload.size();
        Ok(self.cache.lock().insert(key, payload, size))
    }

    /// Fetches the bitmap column `b_edge` (bitmap block only — the measures
    /// stay on disk).
    pub fn edge_bitmap(&self, edge: EdgeId, stats: &mut IoStats) -> Result<BitmapRef, StoreError> {
        stats.bitmap_columns += 1;
        let idx = edge.index();
        let payload = self.fetch(ColKey::EdgeBitmap(edge.0), stats, move |this, stats| {
            let loc = this.columns[idx];
            let path = this.dir.join(format!("part_{:04}.gbi", loc.partition));
            let bytes = this.read_range(&path, loc.bitmap_off, loc.bitmap_len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += loc.bitmap_len;
            let mut buf = Bytes::from(bytes);
            Ok(Payload::Bitmap(Bitmap::decode(&mut buf)?))
        })?;
        Ok(BitmapRef(payload))
    }

    /// Fetches the measure column `m_edge` (bitmap + values, one contiguous
    /// read).
    pub fn edge_measures(
        &self,
        edge: EdgeId,
        stats: &mut IoStats,
    ) -> Result<ColumnRef, StoreError> {
        stats.measure_columns += 1;
        let idx = edge.index();
        let payload = self.fetch(ColKey::EdgeColumn(edge.0), stats, move |this, stats| {
            let loc = this.columns[idx];
            let path = this.dir.join(format!("part_{:04}.gbi", loc.partition));
            let len = loc.bitmap_len + loc.values_len;
            let bytes = this.read_range(&path, loc.bitmap_off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            let mut buf = Bytes::from(bytes);
            let presence = Bitmap::decode(&mut buf)?;
            Ok(Payload::Column(SparseColumn::decode_values(
                presence, &mut buf,
            )?))
        })?;
        Ok(ColumnRef(payload))
    }

    /// Fetches a graph-view bitmap.
    pub fn view_bitmap(&self, view: u32, stats: &mut IoStats) -> Result<BitmapRef, StoreError> {
        stats.view_bitmap_columns += 1;
        let (off, len) = self.view_locs[view as usize];
        let payload = self.fetch(ColKey::ViewBitmap(view), stats, move |this, stats| {
            let bytes = this.read_range(&this.dir.join("views.gbi"), off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            let mut buf = Bytes::from(bytes);
            Ok(Payload::Bitmap(Bitmap::decode(&mut buf)?))
        })?;
        Ok(BitmapRef(payload))
    }

    /// Fetches an aggregate-view column.
    pub fn agg_view(&self, view: u32, stats: &mut IoStats) -> Result<ColumnRef, StoreError> {
        stats.agg_view_columns += 1;
        let (off, len) = self.agg_locs[view as usize];
        let payload = self.fetch(ColKey::AggColumn(view), stats, move |this, stats| {
            let bytes = this.read_range(&this.dir.join("views.gbi"), off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            let mut buf = Bytes::from(bytes);
            Ok(Payload::Column(SparseColumn::decode(&mut buf)?))
        })?;
        Ok(ColumnRef(payload))
    }

    /// Partition-touch accounting (as on the in-memory relation).
    pub fn note_partitions(&self, edges: &[EdgeId], stats: &mut IoStats) {
        let mut seen = std::collections::BTreeSet::new();
        for &e in edges {
            seen.insert(self.partition_of(e));
        }
        stats.partitions_touched += seen.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use crate::relation::RelationBuilder;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("graphbi-disk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build_and_save(dir: &Path) -> crate::MasterRelation {
        let mut b = RelationBuilder::new(20);
        for r in 0..500u32 {
            let edges: Vec<(EdgeId, f64)> = (0..20u32)
                .filter(|e| (r + e) % 3 == 0)
                .map(|e| (EdgeId(e), f64::from(r * 100 + e)))
                .collect();
            b.add_record(&edges);
        }
        let mut rel = b.finish_with_width(8); // 3 partitions
        rel.add_view_bitmap((0..100u32).collect());
        let mut cb = crate::ColumnBuilder::new();
        cb.push(3, 1.5);
        cb.push(9, 2.5);
        rel.add_agg_view(cb.finish());
        persist::save(&rel, dir).unwrap();
        rel
    }

    #[test]
    fn disk_columns_match_memory_columns() {
        let dir = tmpdir("match");
        let rel = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        assert_eq!(disk.record_count(), rel.record_count());
        assert_eq!(disk.edge_count(), 20);
        let mut s1 = IoStats::new();
        let mut s2 = IoStats::new();
        for e in 0..20u32 {
            let dcol = disk.edge_measures(EdgeId(e), &mut s1).unwrap();
            let mcol = rel.edge_measures(EdgeId(e), &mut s2);
            assert_eq!(&*dcol, mcol, "edge {e}");
            let dbm = disk.edge_bitmap(EdgeId(e), &mut s1).unwrap();
            assert_eq!(&*dbm, mcol.presence());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn views_round_trip_from_disk() {
        let dir = tmpdir("views");
        let _ = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        assert_eq!(disk.view_count(), 1);
        assert_eq!(disk.agg_view_count(), 1);
        let mut s = IoStats::new();
        let vb = disk.view_bitmap(0, &mut s).unwrap();
        assert_eq!(vb.len(), 100);
        let av = disk.agg_view(0, &mut s).unwrap();
        assert_eq!(av.get(3), Some(1.5));
        assert_eq!(av.get(9), Some(2.5));
        assert_eq!(s.disk_reads, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_turns_rereads_into_hits() {
        let dir = tmpdir("cache");
        let _ = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        let mut s = IoStats::new();
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 1);
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 1, "second fetch is a cache hit");
        assert_eq!(s.bitmap_columns, 2, "model cost still counts both");
        let (hits, misses) = disk.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        disk.clear_cache();
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 2, "cold cache reads again");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_cache_still_answers_correctly() {
        let dir = tmpdir("tiny");
        let rel = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 64).unwrap(); // nothing fits
        let mut s = IoStats::new();
        for e in [0u32, 7, 13, 0, 7] {
            let dcol = disk.edge_measures(EdgeId(e), &mut s).unwrap();
            let mut scratch = IoStats::new();
            assert_eq!(&*dcol, rel.edge_measures(EdgeId(e), &mut scratch));
        }
        assert_eq!(s.disk_reads, 5, "no caching possible");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_or_corrupt() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(DiskRelation::open(&dir, 1024).is_err());
        std::fs::write(dir.join("manifest.gbi"), b"garbage-manifest-data").unwrap();
        assert!(DiskRelation::open(&dir, 1024).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
