//! Disk-resident column access with an LRU column cache.
//!
//! The paper runs its experiments off a single HDD with cold caches —
//! "enabling processing of graph data that is orders of magnitude larger
//! than the available memory". [`DiskRelation`] reproduces that regime: the
//! relation stays on disk in the [`crate::persist`] layout, every bitmap or
//! measure column is fetched by an explicit ranged read when first needed,
//! and a byte-budgeted [`LruCache`] stands in for
//! the buffer pool. Under a cold cache, [`IoStats::disk_reads`] equals the
//! cost model's "columns fetched" — the paper's metric, made literal.
//!
//! All I/O goes through an injectable [`Vfs`], and every block read off
//! disk (format v2 raw or format v3 compressed — each data file declares
//! itself via its leading magic, so mixed-generation stores just work) is
//! verified against the CRC32 stored in its file's directory before it is
//! decoded: a flipped bit, short read, or truncated
//! file surfaces as [`StoreError::Corrupt`], never a panic or a silently
//! wrong answer. [`DiskRelation::open`] likewise validates the framed
//! manifest and every file directory of the live generation, so a store
//! left partial by a crash is reported as typed corruption.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, Bytes};
use graphbi_bitmap::Bitmap;
use graphbi_graph::EdgeId;
use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::column::SparseColumn;
use crate::iostats::IoStats;
use crate::persist::{
    open_read_err, parse_views_directory, part_file_name, read_manifest, read_sidecar_at,
    views_file_name, PART_DIR_ENTRY, PART_MAGIC_V3,
};
use crate::vfs::{crc32, os_vfs, Verify, VfsHandle};
use crate::StoreError;
use graphbi_bitmap::intcodec::PackedInts;

/// Cache key: which column of which kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ColKey {
    /// An edge's presence bitmap `b_i`.
    EdgeBitmap(u32),
    /// An edge's full measure column `m_i` (bitmap + values).
    EdgeColumn(u32),
    /// A graph-view bitmap `b_v`.
    ViewBitmap(u32),
    /// An aggregate-view column `(m_p, b_p)`.
    AggColumn(u32),
}

/// Cached payload.
enum Payload {
    Bitmap(Bitmap),
    Column(SparseColumn),
}

impl Payload {
    fn bitmap(&self) -> &Bitmap {
        match self {
            Payload::Bitmap(b) => b,
            Payload::Column(c) => c.presence(),
        }
    }

    fn column(&self) -> &SparseColumn {
        match self {
            Payload::Column(c) => c,
            Payload::Bitmap(_) => unreachable!("bitmap payload used as column"),
        }
    }
}

/// Byte location (and expected checksums) of one column's blocks within a
/// partition file.
#[derive(Clone, Copy, Debug)]
struct ColumnLoc {
    partition: u32,
    bitmap_off: u64,
    bitmap_len: u64,
    values_len: u64,
    bitmap_crc: u32,
    values_crc: u32,
    /// True when the partition file is format v3: the values block starts
    /// with a codec tag and decodes through
    /// [`SparseColumn::decode_values_v3`].
    values_tagged: bool,
}

/// A shared handle to a fetched bitmap. Clones share the payload, keeping it
/// alive across cache evictions — batch executors hold one handle per
/// distinct column instead of re-fetching per query.
#[derive(Clone)]
pub struct BitmapRef(Arc<Payload>);

impl std::ops::Deref for BitmapRef {
    type Target = Bitmap;
    fn deref(&self) -> &Bitmap {
        self.0.bitmap()
    }
}

/// A shared handle to a fetched measure column (see [`BitmapRef`] on
/// cloning).
#[derive(Clone)]
pub struct ColumnRef(Arc<Payload>);

impl std::ops::Deref for ColumnRef {
    type Target = SparseColumn;
    fn deref(&self) -> &SparseColumn {
        self.0.column()
    }
}

fn corrupt(path: &Path, what: &'static str) -> StoreError {
    StoreError::Corrupt {
        file: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        what,
    }
}

/// The master relation, resident on disk.
pub struct DiskRelation {
    dir: PathBuf,
    vfs: VfsHandle,
    verify: Verify,
    generation: u64,
    manifest_version: u32,
    record_count: u64,
    edge_count: usize,
    partition_width: usize,
    columns: Vec<ColumnLoc>,
    /// `(offset, length, crc)` of each graph-view bitmap in the views file.
    view_locs: Vec<(u64, u64, u32)>,
    /// `(offset, length, crc)` of each aggregate-view column.
    agg_locs: Vec<(u64, u64, u32)>,
    /// True when the views file is format v3 (codec-tagged agg payloads).
    views_v3: bool,
    cache: Mutex<LruCache<ColKey, Payload>>,
}

impl DiskRelation {
    /// Opens a relation directory written by [`crate::persist::save`]
    /// through the OS filesystem, verifying checksums.
    pub fn open(dir: &Path, cache_bytes: usize) -> Result<DiskRelation, StoreError> {
        DiskRelation::open_with(dir, cache_bytes, os_vfs(), Verify::Checksums)
    }

    /// Opens a relation through `vfs`, reading only the manifest and the
    /// file directories (headers); column data stays on disk until
    /// fetched. `cache_bytes` bounds the column cache, charged in
    /// compressed on-disk bytes (what a re-fetch would read). Partial or
    /// damaged state — a missing generation file, truncated directory, or
    /// checksum mismatch — is reported as [`StoreError::Corrupt`].
    /// `verify` governs payload CRCs on later fetches
    /// ([`Verify::TrustDisk`] is the fuzzer's teeth-test hook); the
    /// manifest and directory checksums are verified regardless.
    pub fn open_with(
        dir: &Path,
        cache_bytes: usize,
        vfs: VfsHandle,
        verify: Verify,
    ) -> Result<DiskRelation, StoreError> {
        let manifest = read_manifest(vfs.as_ref(), dir)?;
        let parts = manifest
            .edge_count
            .div_ceil(manifest.partition_width)
            .max(1);

        let mut columns = Vec::with_capacity(manifest.edge_count);
        for p in 0..parts {
            let path = dir.join(part_file_name(manifest.generation, p));
            let partition = u32::try_from(p).expect("partition fits u32");
            // Every file self-describes: a v3 part leads with its magic, a
            // v2 part with its (manifest-bounded) column count.
            let head = read_exact_range(&vfs, &path, 0, 8)?;
            let magic = u32::from_le_bytes(head[..4].try_into().unwrap());
            if magic == PART_MAGIC_V3 {
                let n = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
                if columns.len() + n > manifest.edge_count {
                    return Err(corrupt(&path, "partition column count out of range"));
                }
                let widths = read_exact_range(&vfs, &path, 8, 2)?;
                let (wb, wv) = (u32::from(widths[0]), u32::from(widths[1]));
                if wb > 64 || wv > 64 {
                    return Err(corrupt(&path, "partition directory width out of range"));
                }
                let bl_bytes = PackedInts::byte_len(n, wb);
                let vl_bytes = PackedInts::byte_len(n, wv);
                let header_len = 10 + bl_bytes + vl_bytes + n * 8;
                let header = read_exact_range(&vfs, &path, 0, (header_len + 4) as u64)?;
                let dir_crc =
                    u32::from_le_bytes(header[header_len..header_len + 4].try_into().unwrap());
                if crc32(&header[..header_len]) != dir_crc {
                    return Err(corrupt(&path, "partition directory checksum mismatch"));
                }
                let blens = PackedInts::from_bytes(&header[10..10 + bl_bytes], wb, n)
                    .ok_or_else(|| corrupt(&path, "partition directory truncated"))?;
                let vlens =
                    PackedInts::from_bytes(&header[10 + bl_bytes..10 + bl_bytes + vl_bytes], wv, n)
                        .ok_or_else(|| corrupt(&path, "partition directory truncated"))?;
                let mut crcs =
                    Bytes::copy_from_slice(&header[10 + bl_bytes + vl_bytes..header_len]);
                let mut offset = (header_len + 4) as u64;
                for i in 0..n {
                    let bitmap_len = blens.get(i);
                    let values_len = vlens.get(i);
                    columns.push(ColumnLoc {
                        partition,
                        bitmap_off: offset,
                        bitmap_len,
                        values_len,
                        bitmap_crc: crcs.get_u32_le(),
                        values_crc: crcs.get_u32_le(),
                        values_tagged: true,
                    });
                    offset += bitmap_len + values_len;
                }
                continue;
            }
            let n = magic as usize;
            if columns.len() + n > manifest.edge_count {
                return Err(corrupt(&path, "partition column count out of range"));
            }
            let header_len = 4 + n * PART_DIR_ENTRY;
            let header = read_exact_range(&vfs, &path, 0, (header_len + 4) as u64)?;
            let dir_crc =
                u32::from_le_bytes(header[header_len..header_len + 4].try_into().unwrap());
            if crc32(&header[..header_len]) != dir_crc {
                return Err(corrupt(&path, "partition directory checksum mismatch"));
            }
            let mut buf = Bytes::copy_from_slice(&header[4..header_len]);
            let mut offset = (header_len + 4) as u64;
            for _ in 0..n {
                let bitmap_len = buf.get_u64_le();
                let values_len = buf.get_u64_le();
                let bitmap_crc = buf.get_u32_le();
                let values_crc = buf.get_u32_le();
                columns.push(ColumnLoc {
                    partition,
                    bitmap_off: offset,
                    bitmap_len,
                    values_len,
                    bitmap_crc,
                    values_crc,
                    values_tagged: false,
                });
                offset += bitmap_len + values_len;
            }
        }
        if columns.len() != manifest.edge_count {
            return Err(StoreError::Format("column count mismatch"));
        }

        let views_path = dir.join(views_file_name(manifest.generation));
        let views_bytes = vfs
            .read(&views_path)
            .map_err(|e| open_read_err(&views_path, e))?;
        let views_dir = parse_views_directory(&views_path, &views_bytes)?;

        Ok(DiskRelation {
            dir: dir.to_owned(),
            vfs,
            verify,
            generation: manifest.generation,
            manifest_version: manifest.version,
            record_count: manifest.record_count,
            edge_count: manifest.edge_count,
            partition_width: manifest.partition_width,
            columns,
            view_locs: views_dir.views,
            agg_locs: views_dir.aggs,
            views_v3: views_dir.v3,
            cache: Mutex::new(LruCache::new(cache_bytes)),
        })
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of edge columns.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The live generation this handle reads from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The on-disk format version the live generation's manifest declares
    /// (2 = raw payloads, 3 = compressed). Individual data files still
    /// self-describe; this is what the *writer* of the live generation
    /// emitted.
    pub fn format_version(&self) -> u32 {
        self.manifest_version
    }

    /// Number of materialized graph views on disk.
    pub fn view_count(&self) -> usize {
        self.view_locs.len()
    }

    /// Number of materialized aggregate views on disk.
    pub fn agg_view_count(&self) -> usize {
        self.agg_locs.len()
    }

    /// Sub-relation of `edge`.
    pub fn partition_of(&self, edge: EdgeId) -> usize {
        edge.index() / self.partition_width
    }

    /// Selectivity hint for the planner: the encoded byte length of
    /// `b_edge`, read from the in-memory column directory. Compressed
    /// bitmap encodings grow with cardinality, so ranking candidates by
    /// encoded length orders them (approximately) sparsest-first without
    /// touching the disk or any cost counter.
    pub fn edge_bitmap_hint(&self, edge: EdgeId) -> u64 {
        self.columns[edge.index()].bitmap_len
    }

    /// Selectivity hint for a graph-view bitmap: its encoded byte length
    /// from the view directory. Like [`DiskRelation::edge_bitmap_hint`],
    /// metadata-only — no I/O, no stats.
    pub fn view_bitmap_hint(&self, view: u32) -> u64 {
        self.view_locs[view as usize].1
    }

    /// The horizontal record shards for an `shards`-way parallel scan (see
    /// [`crate::shard_ranges`]).
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<u32>> {
        crate::relation::shard_ranges(self.record_count, shards)
    }

    /// `(cache hits, cache misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }

    /// Cache evictions so far (entries dropped to make room).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.lock().evictions()
    }

    /// Empties the buffer pool — the "cold system" of the paper's runs.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    /// Reads and verifies the sidecar blob `name` saved with this
    /// generation (see [`crate::persist::save_with`]).
    pub fn sidecar(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        read_sidecar_at(self.vfs.as_ref(), &self.dir, self.generation, name)
    }

    /// Checks a fetched block against its directory checksum (skipped
    /// under [`Verify::TrustDisk`]).
    fn check(
        &self,
        path: &Path,
        bytes: &[u8],
        expected: u32,
        what: &'static str,
    ) -> Result<(), StoreError> {
        if self.verify == Verify::Checksums && crc32(bytes) != expected {
            return Err(corrupt(path, what));
        }
        Ok(())
    }

    /// Cache fill: `load` returns the decoded payload *and the on-disk
    /// byte count it read*, and the cache is charged the latter. Budgeting
    /// the buffer pool in compressed (actual) bytes keeps eviction
    /// decisions and [`IoStats::disk_bytes`] consistent: a column's cache
    /// cost equals the disk read its eviction would re-incur.
    fn fetch(
        &self,
        key: ColKey,
        stats: &mut IoStats,
        load: impl FnOnce(&Self, &mut IoStats) -> Result<(Payload, u64), StoreError>,
    ) -> Result<Arc<Payload>, StoreError> {
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(hit);
        }
        let (payload, disk_len) = load(self, stats)?;
        let size = usize::try_from(disk_len).unwrap_or(usize::MAX);
        Ok(self.cache.lock().insert(key, payload, size))
    }

    /// Fetches the bitmap column `b_edge` (bitmap block only — the measures
    /// stay on disk).
    pub fn edge_bitmap(&self, edge: EdgeId, stats: &mut IoStats) -> Result<BitmapRef, StoreError> {
        stats.bitmap_columns += 1;
        let idx = edge.index();
        let payload = self.fetch(ColKey::EdgeBitmap(edge.0), stats, move |this, stats| {
            let loc = this.columns[idx];
            let path = this
                .dir
                .join(part_file_name(this.generation, loc.partition as usize));
            let bytes = read_exact_range(&this.vfs, &path, loc.bitmap_off, loc.bitmap_len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += loc.bitmap_len;
            this.check(&path, &bytes, loc.bitmap_crc, "bitmap checksum mismatch")?;
            let mut buf = Bytes::from(bytes);
            Ok((Payload::Bitmap(Bitmap::decode(&mut buf)?), loc.bitmap_len))
        })?;
        Ok(BitmapRef(payload))
    }

    /// Fetches the measure column `m_edge` (bitmap + values, one contiguous
    /// read).
    pub fn edge_measures(
        &self,
        edge: EdgeId,
        stats: &mut IoStats,
    ) -> Result<ColumnRef, StoreError> {
        stats.measure_columns += 1;
        let idx = edge.index();
        let payload = self.fetch(ColKey::EdgeColumn(edge.0), stats, move |this, stats| {
            let loc = this.columns[idx];
            let path = this
                .dir
                .join(part_file_name(this.generation, loc.partition as usize));
            let len = loc.bitmap_len + loc.values_len;
            let bytes = read_exact_range(&this.vfs, &path, loc.bitmap_off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            let split = usize::try_from(loc.bitmap_len).expect("len fits usize");
            this.check(
                &path,
                &bytes[..split],
                loc.bitmap_crc,
                "bitmap checksum mismatch",
            )?;
            this.check(
                &path,
                &bytes[split..],
                loc.values_crc,
                "values checksum mismatch",
            )?;
            let mut buf = Bytes::from(bytes);
            let presence = Bitmap::decode(&mut buf)?;
            let col = if loc.values_tagged {
                SparseColumn::decode_values_v3(presence, &mut buf)?
            } else {
                SparseColumn::decode_values(presence, &mut buf)?
            };
            Ok((Payload::Column(col), len))
        })?;
        Ok(ColumnRef(payload))
    }

    /// Fetches a graph-view bitmap.
    pub fn view_bitmap(&self, view: u32, stats: &mut IoStats) -> Result<BitmapRef, StoreError> {
        stats.view_bitmap_columns += 1;
        let (off, len, crc) = self.view_locs[view as usize];
        let payload = self.fetch(ColKey::ViewBitmap(view), stats, move |this, stats| {
            let path = this.dir.join(views_file_name(this.generation));
            let bytes = read_exact_range(&this.vfs, &path, off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            this.check(&path, &bytes, crc, "view block checksum mismatch")?;
            let mut buf = Bytes::from(bytes);
            Ok((Payload::Bitmap(Bitmap::decode(&mut buf)?), len))
        })?;
        Ok(BitmapRef(payload))
    }

    /// Fetches an aggregate-view column.
    pub fn agg_view(&self, view: u32, stats: &mut IoStats) -> Result<ColumnRef, StoreError> {
        stats.agg_view_columns += 1;
        let (off, len, crc) = self.agg_locs[view as usize];
        let payload = self.fetch(ColKey::AggColumn(view), stats, move |this, stats| {
            let path = this.dir.join(views_file_name(this.generation));
            let bytes = read_exact_range(&this.vfs, &path, off, len)?;
            stats.disk_reads += 1;
            stats.disk_bytes += len;
            this.check(&path, &bytes, crc, "view block checksum mismatch")?;
            let mut buf = Bytes::from(bytes);
            let col = if this.views_v3 {
                SparseColumn::decode_v3(&mut buf)?
            } else {
                SparseColumn::decode(&mut buf)?
            };
            Ok((Payload::Column(col), len))
        })?;
        Ok(ColumnRef(payload))
    }

    /// Partition-touch accounting (as on the in-memory relation).
    pub fn note_partitions(&self, edges: &[EdgeId], stats: &mut IoStats) {
        let mut seen = std::collections::BTreeSet::new();
        for &e in edges {
            seen.insert(self.partition_of(e));
        }
        stats.partitions_touched += seen.len() as u64;
    }
}

/// Ranged read with an exact-length contract: a short result (a truncated
/// file, or an injected short read) is corruption, not data.
fn read_exact_range(
    vfs: &VfsHandle,
    path: &Path,
    off: u64,
    len: u64,
) -> Result<Vec<u8>, StoreError> {
    let bytes = vfs
        .read_range(path, off, len)
        .map_err(|e| open_read_err(path, e))?;
    if bytes.len() as u64 != len {
        return Err(corrupt(path, "short read"));
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use crate::relation::RelationBuilder;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("graphbi-disk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build_and_save(dir: &Path) -> crate::MasterRelation {
        let mut b = RelationBuilder::new(20);
        for r in 0..500u32 {
            let edges: Vec<(EdgeId, f64)> = (0..20u32)
                .filter(|e| (r + e) % 3 == 0)
                .map(|e| (EdgeId(e), f64::from(r * 100 + e)))
                .collect();
            b.add_record(&edges);
        }
        let mut rel = b.finish_with_width(8); // 3 partitions
        rel.add_view_bitmap((0..100u32).collect());
        let mut cb = crate::ColumnBuilder::new();
        cb.push(3, 1.5);
        cb.push(9, 2.5);
        rel.add_agg_view(cb.finish());
        persist::save(&rel, dir).unwrap();
        rel
    }

    #[test]
    fn disk_columns_match_memory_columns() {
        let dir = tmpdir("match");
        let rel = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        assert_eq!(disk.record_count(), rel.record_count());
        assert_eq!(disk.edge_count(), 20);
        let mut s1 = IoStats::new();
        let mut s2 = IoStats::new();
        for e in 0..20u32 {
            let dcol = disk.edge_measures(EdgeId(e), &mut s1).unwrap();
            let mcol = rel.edge_measures(EdgeId(e), &mut s2);
            assert_eq!(&*dcol, mcol, "edge {e}");
            let dbm = disk.edge_bitmap(EdgeId(e), &mut s1).unwrap();
            assert_eq!(&*dbm, mcol.presence());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn views_round_trip_from_disk() {
        let dir = tmpdir("views");
        let _ = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        assert_eq!(disk.view_count(), 1);
        assert_eq!(disk.agg_view_count(), 1);
        let mut s = IoStats::new();
        let vb = disk.view_bitmap(0, &mut s).unwrap();
        assert_eq!(vb.len(), 100);
        let av = disk.agg_view(0, &mut s).unwrap();
        assert_eq!(av.get(3), Some(1.5));
        assert_eq!(av.get(9), Some(2.5));
        assert_eq!(s.disk_reads, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_turns_rereads_into_hits() {
        let dir = tmpdir("cache");
        let _ = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 1 << 20).unwrap();
        let mut s = IoStats::new();
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 1);
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 1, "second fetch is a cache hit");
        assert_eq!(s.bitmap_columns, 2, "model cost still counts both");
        let (hits, misses) = disk.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        disk.clear_cache();
        let _ = disk.edge_bitmap(EdgeId(5), &mut s).unwrap();
        assert_eq!(s.disk_reads, 2, "cold cache reads again");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_cache_still_answers_correctly() {
        let dir = tmpdir("tiny");
        let rel = build_and_save(&dir);
        let disk = DiskRelation::open(&dir, 64).unwrap(); // nothing fits
        let mut s = IoStats::new();
        for e in [0u32, 7, 13, 0, 7] {
            let dcol = disk.edge_measures(EdgeId(e), &mut s).unwrap();
            let mut scratch = IoStats::new();
            assert_eq!(&*dcol, rel.edge_measures(EdgeId(e), &mut scratch));
        }
        assert_eq!(s.disk_reads, 5, "no caching possible");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_or_corrupt() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(DiskRelation::open(&dir, 1024).is_err());
        std::fs::write(dir.join("manifest.gbi"), b"garbage-manifest-data").unwrap();
        let Err(err) = DiskRelation::open(&dir, 1024) else {
            panic!("garbage manifest opened")
        };
        assert!(err.is_corruption(), "typed corruption, got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The acceptance-criteria test: one flipped byte on disk surfaces as
    /// `StoreError::Corrupt` under checksum verification, while the same
    /// flip under `Verify::TrustDisk` silently yields a *wrong answer* —
    /// exactly what the CRCs exist to prevent.
    #[test]
    fn flipped_byte_is_corrupt_never_a_wrong_answer() {
        let dir = tmpdir("bitflip");
        let rel = build_and_save(&dir);
        let edge = EdgeId(2);

        // Locate the values block of `edge` via a clean open, then flip one
        // byte in the middle of it on the real filesystem.
        let probe = DiskRelation::open(&dir, 1 << 20).unwrap();
        let loc = probe.columns[edge.index()];
        let path = dir.join(part_file_name(probe.generation(), loc.partition as usize));
        let mut raw = std::fs::read(&path).unwrap();
        let target = usize::try_from(loc.bitmap_off + loc.bitmap_len).unwrap() + 1;
        raw[target] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let checked = DiskRelation::open(&dir, 1 << 20).unwrap();
        let mut s = IoStats::new();
        let Err(err) = checked.edge_measures(edge, &mut s) else {
            panic!("flipped byte fetched cleanly")
        };
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
        // The bitmap block is untouched, so the bitmap fetch still verifies.
        assert!(checked.edge_bitmap(edge, &mut s).is_ok());

        let trusting = DiskRelation::open_with(&dir, 1 << 20, os_vfs(), Verify::TrustDisk).unwrap();
        let dcol = trusting.edge_measures(edge, &mut s).unwrap();
        let mut scratch = IoStats::new();
        assert_ne!(
            &*dcol,
            rel.edge_measures(edge, &mut scratch),
            "without verification the flip silently changes an answer"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_part_file_is_typed_corruption() {
        let dir = tmpdir("truncated");
        let _ = build_and_save(&dir);
        let probe = DiskRelation::open(&dir, 1 << 20).unwrap();
        let path = dir.join(part_file_name(probe.generation(), 0));
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        // Either the directory parse or the first fetch must report
        // corruption; nothing may panic.
        match DiskRelation::open(&dir, 1 << 20) {
            Err(e) => assert!(e.is_corruption(), "typed corruption, got {e}"),
            Ok(disk) => {
                let mut s = IoStats::new();
                let mut saw_corrupt = false;
                for e in 0..8u32 {
                    if let Err(err) = disk.edge_measures(EdgeId(e), &mut s) {
                        assert!(err.is_corruption(), "typed corruption, got {err}");
                        saw_corrupt = true;
                    }
                }
                assert!(saw_corrupt, "truncation went unnoticed");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
