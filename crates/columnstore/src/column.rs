//! Measure columns.

use bytes::{Buf, Bytes, BytesMut};
use graphbi_bitmap::kernels::{self, FoldAgg};
use graphbi_bitmap::{Bitmap, RecordId};

use crate::codec::Measures;
use crate::StoreError;

/// A sparse measure column: `values[presence.rank(r)]` is the measure of
/// record `r` when `presence.contains(r)`, NULL otherwise.
///
/// This is the vertically-compressed layout §4.1 relies on: NULLs occupy no
/// space, and the presence bitmap doubles as the edge's bitmap index column
/// `b_i` (a record has a measure on edge `i` exactly when it contains the
/// edge).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseColumn {
    presence: Bitmap,
    values: Measures,
}

impl SparseColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from parts.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != presence.len()`.
    pub fn from_parts(presence: Bitmap, values: Vec<f64>) -> SparseColumn {
        assert_eq!(
            presence.len(),
            values.len() as u64,
            "one value per present record"
        );
        SparseColumn {
            presence,
            values: Measures::Raw(values),
        }
    }

    /// The presence bitmap — also the bitmap index column of this edge.
    pub fn presence(&self) -> &Bitmap {
        &self.presence
    }

    /// Number of non-NULL entries.
    pub fn non_null_count(&self) -> usize {
        self.values.len()
    }

    /// The value for record `r`, or NULL.
    pub fn get(&self, r: RecordId) -> Option<f64> {
        self.presence.contains(r).then(|| {
            self.values
                .get(usize::try_from(self.presence.rank(r)).expect("rank fits usize"))
        })
    }

    /// Values for every record in `ids`, in ascending record order. Records
    /// absent from the column are skipped (a query result bitmap is always a
    /// subset of the presence bitmaps of the query's own edges, but view
    /// rewrites may probe wider sets).
    pub fn gather(&self, ids: &Bitmap) -> Vec<f64> {
        let mut out = Vec::with_capacity(ids.len().min(self.presence.len()) as usize);
        self.fold_over(ids, |v| out.push(v));
        out
    }

    /// Streams the values of every record in `ids` through `f`, in ascending
    /// record order, without materializing an intermediate vector — the fused
    /// gather-aggregate kernel. Skips records absent from the column, exactly
    /// like [`SparseColumn::gather`] (which is this kernel folded into a
    /// `Vec`).
    ///
    /// Uses rank-based point lookups when `ids` is much smaller than the
    /// column, streams every value when `ids` covers the whole presence
    /// set (the common full-column aggregate, served by the block-decode
    /// kernels), and falls back to a lockstep scan otherwise.
    pub fn fold_over(&self, ids: &Bitmap, mut f: impl FnMut(f64)) {
        if ids.len() * 8 < self.presence.len() {
            ids.for_each(|r| {
                if let Some(v) = self.get(r) {
                    f(v);
                }
            });
        } else if ids.len() >= self.presence.len() && self.presence.is_subset(ids) {
            self.values.fold_all(&mut f);
        } else {
            let mut wanted = ids.iter().peekable();
            for (idx, r) in self.presence.iter().enumerate() {
                while wanted.peek().is_some_and(|&w| w < r) {
                    wanted.next();
                }
                match wanted.peek() {
                    Some(&w) if w == r => {
                        f(self.values.get(idx));
                        wanted.next();
                    }
                    Some(_) => {}
                    None => break,
                }
            }
        }
    }

    /// Folds the values of every record in `ids` into a SUM/MIN/MAX/COUNT
    /// accumulator in one pass, in the documented four-lane order of
    /// [`graphbi_bitmap::kernels::fold_f64`] — identical on the scalar and
    /// simd paths, so aggregates computed here are bit-stable across
    /// hardware. When `ids` covers the whole column and the values are
    /// raw, the slice goes straight through the SIMD fold kernel.
    pub fn fold_aggregate(&self, ids: &Bitmap) -> FoldAgg {
        if ids.len() >= self.presence.len() && self.presence.is_subset(ids) {
            if let Some(slice) = self.values.raw_slice() {
                return kernels::fold_f64(slice);
            }
        }
        let mut agg = FoldAgg::new();
        self.fold_over(ids, |v| agg.push(v));
        agg
    }

    /// Gathers `(record, value)` pairs for `ids`, ascending by record.
    pub fn gather_with_ids(&self, ids: &Bitmap) -> Vec<(RecordId, f64)> {
        ids.iter()
            .filter_map(|r| self.get(r).map(|v| (r, v)))
            .collect()
    }

    /// Re-encodes the presence bitmap in its smallest representation; call
    /// after bulk loads.
    pub fn optimize(&mut self) {
        self.presence.optimize();
    }

    /// Appends the value of a record strictly beyond all present records —
    /// the incremental-ingest path (§6.1: the schema and data grow on
    /// demand as new records arrive).
    ///
    /// # Panics
    ///
    /// Panics when `record` is not larger than every present record.
    pub fn append(&mut self, record: RecordId, value: f64) {
        assert!(
            self.presence.max().is_none_or(|m| m < record),
            "append must be ascending: {record} after {:?}",
            self.presence.max()
        );
        self.presence.insert(record);
        self.values.push(value);
    }

    /// Heap bytes used by the column (bitmap + values). A
    /// dictionary-coded value block reports its packed size — the
    /// byte-budgeted column cache accounts compressed bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.presence.size_in_bytes() + self.values.size_in_bytes()
    }

    /// Serializes to a fresh buffer (v2 form): encoded presence bitmap
    /// then raw f64s.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.presence.encoded_len() + self.values.len() * 8);
        self.presence.encode_into(&mut buf);
        self.values.encode_raw_into(&mut buf);
        buf.freeze()
    }

    /// Decodes a column from the front of `buf` (v2 form).
    pub fn decode(buf: &mut impl Buf) -> Result<SparseColumn, StoreError> {
        let presence = Bitmap::decode(buf)?;
        let n = usize::try_from(presence.len()).expect("cardinality fits usize");
        let values = Measures::decode_raw(n, buf)
            .map_err(|_| StoreError::Format("sparse column values truncated"))?;
        Ok(SparseColumn { presence, values })
    }

    /// Serializes with the v3 compressed forms: v3-encoded presence bitmap
    /// then a codec-tagged value block.
    pub fn encode_v3(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(1 + self.presence.encoded_len() + self.values.len() * 8);
        self.presence.encode_v3_into(&mut buf);
        self.values.encode_v3_into(&mut buf);
        buf.freeze()
    }

    /// Decodes a column written by [`SparseColumn::encode_v3`].
    pub fn decode_v3(buf: &mut impl Buf) -> Result<SparseColumn, StoreError> {
        let presence = Bitmap::decode(buf)?;
        let n = usize::try_from(presence.len()).expect("cardinality fits usize");
        let values = Measures::decode_v3(n, buf)?;
        Ok(SparseColumn { presence, values })
    }

    /// Iterates `(record, value)` pairs in ascending record order.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, f64)> + '_ {
        self.presence.iter().zip(self.values.iter())
    }

    /// Serializes only the value block in the raw v2 form (the presence
    /// bitmap is serialized separately so a disk-resident store can fetch
    /// the bitmap column without touching the measures).
    pub fn encode_values(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.values.len() * 8);
        self.values.encode_raw_into(&mut buf);
        buf.freeze()
    }

    /// Decodes a value block previously written by
    /// [`SparseColumn::encode_values`] and pairs it with its presence
    /// bitmap.
    pub fn decode_values(presence: Bitmap, buf: &mut impl Buf) -> Result<SparseColumn, StoreError> {
        let n = usize::try_from(presence.len()).expect("cardinality fits usize");
        let values = Measures::decode_raw(n, buf)?;
        Ok(SparseColumn { presence, values })
    }

    /// Serializes only the value block in the codec-tagged v3 form,
    /// dictionary-coding low-cardinality measures.
    pub fn encode_values_v3(&self) -> Bytes {
        self.values.encode_v3()
    }

    /// Decodes a v3 value block written by
    /// [`SparseColumn::encode_values_v3`]. A dictionary-coded block stays
    /// packed in memory; [`SparseColumn::fold_over`] and
    /// [`SparseColumn::get`] read straight through the dictionary.
    pub fn decode_values_v3(
        presence: Bitmap,
        buf: &mut impl Buf,
    ) -> Result<SparseColumn, StoreError> {
        let n = usize::try_from(presence.len()).expect("cardinality fits usize");
        let values = Measures::decode_v3(n, buf)?;
        Ok(SparseColumn { presence, values })
    }
}

/// Builds a [`SparseColumn`] from ascending `(record, value)` appends — the
/// loader's path.
#[derive(Default)]
pub struct ColumnBuilder {
    presence: graphbi_bitmap::BitmapBuilder,
    values: Vec<f64>,
}

impl ColumnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the value of `record`; records must arrive strictly
    /// ascending.
    pub fn push(&mut self, record: RecordId, value: f64) {
        self.presence.push(record);
        self.values.push(value);
    }

    /// Finishes the column.
    pub fn finish(self) -> SparseColumn {
        SparseColumn {
            presence: self.presence.finish(),
            values: Measures::Raw(self.values),
        }
    }
}

/// NULL-padded dense column: one slot per record id, used only by the
/// storage-ablation bench to quantify what the sparse layout saves.
#[derive(Clone, Debug)]
pub struct DenseColumn {
    values: Vec<f64>,
    present: Vec<bool>,
}

impl DenseColumn {
    /// Creates a column of `n` NULLs.
    pub fn new(n: usize) -> Self {
        DenseColumn {
            values: vec![0.0; n],
            present: vec![false; n],
        }
    }

    /// Sets the value of `record`.
    pub fn set(&mut self, record: RecordId, value: f64) {
        self.values[record as usize] = value;
        self.present[record as usize] = true;
    }

    /// The value of `record`, or NULL.
    pub fn get(&self, record: RecordId) -> Option<f64> {
        self.present
            .get(record as usize)
            .copied()
            .unwrap_or(false)
            .then(|| self.values[record as usize])
    }

    /// Heap bytes used — independent of how many values are NULL.
    pub fn size_in_bytes(&self) -> usize {
        self.values.len() * 8 + self.present.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(entries: &[(u32, f64)]) -> SparseColumn {
        let mut b = ColumnBuilder::new();
        for &(r, v) in entries {
            b.push(r, v);
        }
        b.finish()
    }

    #[test]
    fn get_returns_value_or_null() {
        let c = column(&[(1, 10.0), (5, 50.0), (70_000, 7.0)]);
        assert_eq!(c.get(1), Some(10.0));
        assert_eq!(c.get(5), Some(50.0));
        assert_eq!(c.get(70_000), Some(7.0));
        assert_eq!(c.get(2), None);
        assert_eq!(c.non_null_count(), 3);
    }

    #[test]
    fn gather_both_paths_agree() {
        let entries: Vec<(u32, f64)> = (0..10_000).map(|i| (i * 3, f64::from(i))).collect();
        let c = column(&entries);
        // Small id set → rank path.
        let small: Bitmap = [3u32, 9, 29_997].into_iter().collect();
        assert_eq!(c.gather(&small), vec![1.0, 3.0, 9_999.0]);
        // Large id set → scan path.
        let large: Bitmap = (0..30_000u32).collect();
        let got = c.gather(&large);
        assert_eq!(got.len(), 10_000);
        assert_eq!(got[0], 0.0);
        assert_eq!(got[9_999], 9_999.0);
    }

    #[test]
    fn fold_over_matches_gather_on_both_paths() {
        let entries: Vec<(u32, f64)> = (0..10_000).map(|i| (i * 3, f64::from(i))).collect();
        let c = column(&entries);
        let small: Bitmap = [3u32, 9, 29_997].into_iter().collect();
        let large: Bitmap = (0..30_000u32).collect();
        for ids in [&small, &large] {
            let mut streamed = Vec::new();
            c.fold_over(ids, |v| streamed.push(v));
            assert_eq!(streamed, c.gather(ids));
        }
        let mut sum = 0.0;
        let mut n = 0u64;
        c.fold_over(&large, |v| {
            sum += v;
            n += 1;
        });
        assert_eq!(n, 10_000);
        assert_eq!(sum, (0..10_000).map(f64::from).sum());
    }

    #[test]
    fn gather_skips_absent_records() {
        let c = column(&[(10, 1.0), (20, 2.0)]);
        let ids: Bitmap = [5u32, 10, 15, 20, 25].into_iter().collect();
        assert_eq!(c.gather(&ids), vec![1.0, 2.0]);
        assert_eq!(c.gather_with_ids(&ids), vec![(10, 1.0), (20, 2.0)]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = column(&[(0, -1.5), (100, f64::MAX), (65_536, 0.0)]);
        let bytes = c.encode();
        let back = SparseColumn::decode(&mut bytes.clone()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn decode_rejects_truncated_values() {
        let c = column(&[(0, 1.0), (1, 2.0)]);
        let bytes = c.encode();
        let mut cut = bytes.slice(..bytes.len() - 4);
        assert!(SparseColumn::decode(&mut cut).is_err());
    }

    #[test]
    fn sparse_beats_dense_on_sparse_data() {
        let n = 100_000u32;
        let mut dense = DenseColumn::new(n as usize);
        let mut b = ColumnBuilder::new();
        for r in (0..n).step_by(100) {
            dense.set(r, 1.0);
            b.push(r, 1.0);
        }
        let sparse = b.finish();
        assert_eq!(sparse.get(100), Some(1.0));
        assert_eq!(dense.get(100), Some(1.0));
        assert!(sparse.size_in_bytes() * 10 < dense.size_in_bytes());
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let c = column(&[(2, 0.2), (4, 0.4)]);
        let pairs: Vec<(u32, f64)> = c.iter().collect();
        assert_eq!(pairs, vec![(2, 0.2), (4, 0.4)]);
    }
}
