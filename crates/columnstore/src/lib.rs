#![warn(missing_docs)]

//! Column-oriented storage of graph records (§4 of the paper).
//!
//! The framework stores every graph record in one *master relation*
//! `R(recid, m1…mn, b1…bn, views…)`: a measure column and a bitmap column per
//! edge id of the universe. This crate is the stand-in for the MonetDB
//! column store used in the paper's experiments:
//!
//! * [`SparseColumn`] — one measure column: a presence bitmap plus a dense
//!   vector of the non-NULL values in record-id order. Because a record
//!   contains only a small fraction of the universe's edges, the NULL-heavy
//!   columns compress to almost nothing — the property behind the paper's
//!   Figure 4 (database size independent of record density).
//! * [`MasterRelation`] — the full relation, vertically partitioned into
//!   sub-relations of at most [`DEFAULT_PARTITION_WIDTH`] edge columns
//!   (§6.1), plus dynamically added view columns: graph views (one bitmap)
//!   and aggregate graph views (one sparse measure column whose presence
//!   bitmap is the view's `b_p`).
//! * [`IoStats`] — the cost-model counters: the paper's view-selection
//!   reasoning assumes "cost ∝ number of columns fetched", and every fetch
//!   path here increments the corresponding counter so the benches can report
//!   both wall-clock and model cost.
//! * [`persist`] — the crash-safe binary on-disk layout (formats v2 and
//!   v3): generation-named immutable data files, CRC32 on every payload,
//!   and an atomically renamed framed manifest as the commit point. Writers
//!   emit the codec-compressed v3 by default ([`codec`]; raw payloads stay
//!   a per-block candidate, so no file ever grows); readers sniff per-file
//!   magic, so v2 stores and mixed v2/v3 generations load unchanged. Used
//!   to measure the disk footprint (Table 2, Figure 4) and to survive
//!   restarts *and crashes mid-save*.
//! * [`vfs`] — the injectable filesystem underneath [`persist`] and
//!   [`disk`]: [`OsVfs`] in production, [`FaultVfs`] (deterministic torn
//!   writes, short reads, bit flips, ENOSPC, lost fsyncs) under the
//!   crash-consistency fuzzer.
//! * [`delta`] + [`wal`] — the streaming-ingest write path: an epoch-tagged
//!   in-memory write buffer ([`DeltaStore`]) overlaid on the immutable
//!   generation files, made durable by a CRC32-framed write-ahead log
//!   appended and fsynced through [`vfs`] and replayed on reopen.

mod cache;
pub mod codec;
mod column;
pub mod delta;
pub mod disk;
mod iostats;
pub mod persist;
mod relation;
pub mod vfs;
pub mod wal;

pub use cache::LruCache;
pub use column::{ColumnBuilder, DenseColumn, SparseColumn};
pub use delta::{DeltaOp, DeltaStore};
pub use disk::{BitmapRef, ColumnRef, DiskRelation};
pub use iostats::{IoStats, SharedIoStats};
pub use persist::FormatVersion;
pub use relation::{
    shard_ranges, AggViewId, MasterRelation, RelationBuilder, ViewId, DEFAULT_PARTITION_WIDTH,
};
pub use vfs::{crc32, os_vfs, FaultVfs, OsVfs, Verify, Vfs, VfsHandle};

/// Errors from storage operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure during persist/open.
    Io(std::io::Error),
    /// The on-disk bytes did not decode.
    Decode(graphbi_bitmap::DecodeError),
    /// The file layout was malformed.
    Format(&'static str),
    /// A specific on-disk file failed integrity verification: checksum
    /// mismatch, truncated or out-of-range block, or a data file missing
    /// from the generation the manifest points at.
    Corrupt {
        /// File name within the store directory.
        file: String,
        /// What failed.
        what: &'static str,
    },
}

impl StoreError {
    /// True when the error indicates damaged or partial on-disk state (as
    /// opposed to an environmental I/O failure).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::Corrupt { .. } | StoreError::Decode(_) | StoreError::Format(_)
        )
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Decode(e) => write!(f, "decode error: {e}"),
            StoreError::Format(what) => write!(f, "bad file format: {what}"),
            StoreError::Corrupt { file, what } => write!(f, "corrupt store file {file}: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<graphbi_bitmap::DecodeError> for StoreError {
    fn from(e: graphbi_bitmap::DecodeError) -> Self {
        StoreError::Decode(e)
    }
}
