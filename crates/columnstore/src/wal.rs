//! CRC32-framed write-ahead log for delta commits.
//!
//! Each commit becomes one frame appended to `wal.gbl` (a name that does
//! not parse as a generation file, so generation GC never touches it)
//! followed by an fsync — the commit is durable exactly when that fsync
//! returns. A frame is `[magic u32][payload_len u32][crc32 u32][payload]`
//! (all little-endian), with the payload carrying the commit epoch and
//! its operations. Replay scans frames in order and stops at the first
//! torn one — bad magic, truncation, CRC mismatch, or a non-increasing
//! epoch — which by the append-only [`Vfs::append`] contract can only be
//! an unacknowledged suffix: every acknowledged commit sits in front of
//! it. Compaction folds committed epochs into a new generation and then
//! [`truncate`]s the log.

use std::io;
use std::path::Path;

use graphbi_graph::{EdgeId, GraphRecord, RecordBuilder};

use crate::delta::DeltaOp;
use crate::vfs::{crc32, Vfs};

/// WAL file name inside a store directory. Deliberately not of the
/// `g{gen}-…` form so [`crate::persist`] garbage collection ignores it.
pub const WAL_FILE: &str = "wal.gbl";

/// `"GBWL"` — graph-BI write-ahead log.
const WAL_MAGIC: u32 = 0x4742_574c;

const TAG_INSERT: u8 = 0;
const TAG_UPDATE: u8 = 1;

/// Encodes one commit as a self-checking frame.
pub fn encode_frame(epoch: u64, ops: &[DeltaOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + ops.len() * 32);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            DeltaOp::Insert(rec) => {
                payload.push(TAG_INSERT);
                encode_record(&mut payload, rec);
            }
            DeltaOp::Update(rid, rec) => {
                payload.push(TAG_UPDATE);
                payload.extend_from_slice(&u64::from(*rid).to_le_bytes());
                encode_record(&mut payload, rec);
            }
        }
    }
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn encode_record(out: &mut Vec<u8>, rec: &GraphRecord) {
    out.extend_from_slice(&(rec.edges().len() as u32).to_le_bytes());
    for &(e, m) in rec.edges() {
        out.extend_from_slice(&e.0.to_le_bytes());
        out.extend_from_slice(&m.to_bits().to_le_bytes());
    }
}

/// Appends one commit frame and fsyncs it — the durability point of a
/// delta commit. Returns the frame size in bytes. Any error here means
/// the commit may or may not have reached disk; the caller must treat the
/// log tail as suspect until a successful replay or truncation.
pub fn append_commit(vfs: &dyn Vfs, path: &Path, epoch: u64, ops: &[DeltaOp]) -> io::Result<u64> {
    let frame = encode_frame(epoch, ops);
    vfs.append(path, &frame)?;
    vfs.fsync(path)?;
    Ok(frame.len() as u64)
}

/// Replays every intact frame, in order, as `(epoch, ops)` pairs.
///
/// A missing file is an empty log. Scanning stops — without error — at
/// the first frame that fails validation (bad magic, truncated length,
/// CRC mismatch, or an epoch not above its predecessor): that is the
/// torn unacknowledged tail the crash model permits.
pub fn replay(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<(u64, Vec<DeltaOp>)>> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut commits = Vec::new();
    let mut at = 0usize;
    let mut last_epoch = 0u64;
    while bytes.len() - at >= 12 {
        let magic = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap());
        if magic != WAL_MAGIC || bytes.len() - at - 12 < len {
            break;
        }
        let payload = &bytes[at + 12..at + 12 + len];
        if crc32(payload) != crc {
            break;
        }
        let Some((epoch, ops)) = decode_payload(payload) else {
            break;
        };
        // Epochs strictly increase within one log (commits are epoch ≥ 1,
        // so the initial 0 accepts any first frame); anything else is a
        // stale frame past a truncation tear.
        if epoch <= last_epoch {
            break;
        }
        last_epoch = epoch;
        commits.push((epoch, ops));
        at += 12 + len;
    }
    Ok(commits)
}

fn decode_payload(payload: &[u8]) -> Option<(u64, Vec<DeltaOp>)> {
    let mut at = 0usize;
    let epoch = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
    at += 8;
    let n_ops = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
    at += 4;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let tag = *payload.get(at)?;
        at += 1;
        let rid = if tag == TAG_UPDATE {
            let r = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
            at += 8;
            Some(u32::try_from(r).ok()?)
        } else if tag == TAG_INSERT {
            None
        } else {
            return None;
        };
        let n_edges = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        let mut b = RecordBuilder::with_capacity(n_edges);
        for _ in 0..n_edges {
            let e = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?);
            at += 4;
            let m = f64::from_bits(u64::from_le_bytes(
                payload.get(at..at + 8)?.try_into().ok()?,
            ));
            at += 8;
            b.add(EdgeId(e), m);
        }
        let rec = b.build();
        ops.push(match rid {
            Some(r) => DeltaOp::Update(r, rec),
            None => DeltaOp::Insert(rec),
        });
    }
    if at == payload.len() {
        Some((epoch, ops))
    } else {
        None
    }
}

/// Empties the log after compaction has folded its epochs into a
/// generation. Durable once the fsync returns.
pub fn truncate(vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
    vfs.write(path, &[])?;
    vfs.fsync(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;
    use std::path::PathBuf;

    fn rec(pairs: &[(u32, f64)]) -> GraphRecord {
        let mut b = RecordBuilder::new();
        for &(e, m) in pairs {
            b.add(EdgeId(e), m);
        }
        b.build()
    }

    fn sample_commits() -> Vec<(u64, Vec<DeltaOp>)> {
        vec![
            (1, vec![DeltaOp::Insert(rec(&[(0, 1.5), (3, 2.0)]))]),
            (
                2,
                vec![
                    DeltaOp::Update(7, rec(&[(1, 4.0)])),
                    DeltaOp::Insert(rec(&[(2, 8.0)])),
                ],
            ),
            (5, vec![]),
        ]
    }

    fn assert_same(a: &[(u64, Vec<DeltaOp>)], b: &[(u64, Vec<DeltaOp>)]) {
        assert_eq!(a.len(), b.len());
        for ((ea, oa), (eb, ob)) in a.iter().zip(b) {
            assert_eq!(ea, eb);
            assert_eq!(oa.len(), ob.len());
            for (x, y) in oa.iter().zip(ob) {
                match (x, y) {
                    (DeltaOp::Insert(rx), DeltaOp::Insert(ry)) => {
                        assert_eq!(rx.edges(), ry.edges())
                    }
                    (DeltaOp::Update(ix, rx), DeltaOp::Update(iy, ry)) => {
                        assert_eq!(ix, iy);
                        assert_eq!(rx.edges(), ry.edges());
                    }
                    _ => panic!("op kind mismatch"),
                }
            }
        }
    }

    #[test]
    fn commits_round_trip_and_truncate_clears() {
        let vfs = FaultVfs::new(3);
        let path = PathBuf::from("/wal/wal.gbl");
        assert!(replay(&vfs, &path).unwrap().is_empty());
        let commits = sample_commits();
        for (epoch, ops) in &commits {
            append_commit(&vfs, &path, *epoch, ops).unwrap();
        }
        assert_same(&replay(&vfs, &path).unwrap(), &commits);
        // Replay does not consume the log.
        assert_same(&replay(&vfs, &path).unwrap(), &commits);
        truncate(&vfs, &path).unwrap();
        assert!(replay(&vfs, &path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_stops_replay_at_last_intact_frame() {
        let vfs = FaultVfs::new(9);
        let path = PathBuf::from("/wal/wal.gbl");
        let commits = sample_commits();
        for (epoch, ops) in &commits {
            append_commit(&vfs, &path, *epoch, ops).unwrap();
        }
        let full = vfs.read(&path).unwrap();
        let last = encode_frame(7, &[DeltaOp::Insert(rec(&[(4, 1.0)]))]);
        for cut in 1..last.len() {
            vfs.write(&path, &full).unwrap();
            vfs.append(&path, &last[..cut]).unwrap();
            assert_same(&replay(&vfs, &path).unwrap(), &commits);
        }
        vfs.write(&path, &full).unwrap();
        vfs.append(&path, &last).unwrap();
        assert_eq!(replay(&vfs, &path).unwrap().len(), commits.len() + 1);
    }

    #[test]
    fn corrupt_byte_cuts_replay_from_that_frame_on() {
        let vfs = FaultVfs::new(11);
        let path = PathBuf::from("/wal/wal.gbl");
        for (epoch, ops) in &sample_commits() {
            append_commit(&vfs, &path, *epoch, ops).unwrap();
        }
        let f1 = encode_frame(1, &sample_commits()[0].1);
        // Flip a byte inside the second frame's payload: first frame
        // survives, the rest is treated as torn.
        vfs.corrupt_at(&path, f1.len() + 14);
        assert_eq!(replay(&vfs, &path).unwrap().len(), 1);
    }

    #[test]
    fn epoch_regression_is_a_tear() {
        let vfs = FaultVfs::new(13);
        let path = PathBuf::from("/wal/wal.gbl");
        append_commit(&vfs, &path, 4, &[DeltaOp::Insert(rec(&[(0, 1.0)]))]).unwrap();
        append_commit(&vfs, &path, 4, &[DeltaOp::Insert(rec(&[(1, 2.0)]))]).unwrap();
        assert_eq!(replay(&vfs, &path).unwrap().len(), 1);
    }
}
