//! Measure-value codecs for on-disk format v3.
//!
//! A v3 values block is one codec tag byte followed by the codec payload
//! (all little-endian; `n`, the value count, comes from the presence
//! bitmap's cardinality exactly as in v2):
//!
//! ```text
//! tag 0 raw:  n × f64
//! tag 1 dict: ndict u32, ndict × f64, width u8,
//!             n × width-bit packed dictionary indices
//! ```
//!
//! The writer dictionary-codes a column only when the packed form is
//! strictly smaller than raw — measures drawn from a small domain
//! (quantized prices, counts, category codes) collapse to a few bits per
//! value, while continuous measures stay raw at no overhead beyond the tag
//! byte. Values are interned by their IEEE-754 bit pattern, so every f64
//! (including NaNs and signed zeros) round-trips bit-identically.
//!
//! [`Measures`] keeps a loaded dictionary block *in its packed form*: the
//! fused gather-aggregate kernel (`SparseColumn::fold_over`) streams
//! values through the dictionary without ever materializing a raw `Vec`,
//! so the hot path decodes each fetched block at most once.
//!
//! This module also re-exports the integer-compression primitives from
//! `graphbi_bitmap::intcodec` (bit-packing, Elias-Fano, gamma codes) so
//! the property-test suite can drive every codec from one place.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub use graphbi_bitmap::intcodec::{
    gallop_intersect, gamma_bit_len, BitReader, BitWriter, EfCursor, EliasFano, PackedInts,
};
use graphbi_bitmap::kernels;

use crate::StoreError;

/// Stack-buffer size for block decoding of packed dictionary indices.
const UNPACK_BLOCK: usize = 64;

/// Codec tag: raw f64 values.
pub const VALUES_RAW: u8 = 0;
/// Codec tag: dictionary + fixed-width packed indices.
pub const VALUES_DICT: u8 = 1;

/// Dictionary entries beyond this never pay for themselves against raw.
const DICT_MAX: usize = 1 << 24;

/// A measure vector: raw, or dictionary-coded exactly as loaded from a v3
/// values block. All readers go through [`Measures::get`]/[`Measures::iter`],
/// which resolve dictionary indices on the fly.
#[derive(Clone, Debug)]
pub(crate) enum Measures {
    /// One f64 per present record.
    Raw(Vec<f64>),
    /// Distinct values plus a packed index per present record.
    Dict {
        dict: Vec<f64>,
        /// `dict.len() > indices.get(i)` for every `i` — enforced at
        /// decode, maintained by construction at encode.
        indices: PackedInts,
    },
}

impl Default for Measures {
    fn default() -> Self {
        Measures::Raw(Vec::new())
    }
}

impl PartialEq for Measures {
    /// Representation-independent: a dictionary-coded vector equals the
    /// raw vector with the same values (f64 semantics, as the previous
    /// `Vec<f64>` derive used).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Measures {
    /// Number of values.
    pub(crate) fn len(&self) -> usize {
        match self {
            Measures::Raw(v) => v.len(),
            Measures::Dict { indices, .. } => indices.len(),
        }
    }

    /// The `i`-th value (rank order of the presence bitmap).
    pub(crate) fn get(&self, i: usize) -> f64 {
        match self {
            Measures::Raw(v) => v[i],
            Measures::Dict { dict, indices } => dict[indices.get(i) as usize],
        }
    }

    /// Iterates values in rank order, resolving dictionary indices lazily.
    pub(crate) fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The contiguous value slice, when this vector is raw. The fused
    /// aggregation path hands this straight to the SIMD fold kernel.
    pub(crate) fn raw_slice(&self) -> Option<&[f64]> {
        match self {
            Measures::Raw(v) => Some(v),
            Measures::Dict { .. } => None,
        }
    }

    /// Streams every value in rank order through `f`. Dictionary blocks
    /// are resolved a block at a time: the packed indices go through the
    /// dispatched unpack kernel and the dictionary lookups through the
    /// dispatched gather kernel, instead of per-element bit reads.
    pub(crate) fn fold_all(&self, f: &mut impl FnMut(f64)) {
        match self {
            Measures::Raw(v) => {
                for &x in v {
                    f(x);
                }
            }
            Measures::Dict { dict, indices } => {
                let mut ib = [0u64; UNPACK_BLOCK];
                let mut vb = [0f64; UNPACK_BLOCK];
                let mut start = 0usize;
                while start < indices.len() {
                    let got = indices.unpack_into(start, &mut ib);
                    let ok = kernels::gather_f64(dict, &ib[..got], &mut vb[..got]);
                    assert!(ok, "dict indices validated at decode");
                    for &v in &vb[..got] {
                        f(v);
                    }
                    start += got;
                }
            }
        }
    }

    /// Appends a value — the ingest path. A dictionary-coded vector is
    /// thawed to raw first (appends happen to in-memory columns; loaded
    /// generations are immutable).
    pub(crate) fn push(&mut self, value: f64) {
        if let Measures::Dict { .. } = self {
            *self = Measures::Raw(self.iter().collect());
        }
        let Measures::Raw(v) = self else {
            unreachable!()
        };
        v.push(value);
    }

    /// Heap bytes held — the dictionary form reports its compressed size,
    /// which is what the byte-budgeted column cache accounts.
    pub(crate) fn size_in_bytes(&self) -> usize {
        match self {
            Measures::Raw(v) => v.len() * 8,
            Measures::Dict { dict, indices } => dict.len() * 8 + indices.size_in_bytes(),
        }
    }

    /// Writes the raw (v2) value block: `len()` f64s, no tag.
    pub(crate) fn encode_raw_into(&self, buf: &mut BytesMut) {
        for v in self.iter() {
            buf.put_f64_le(v);
        }
    }

    /// Reads a raw (v2) value block of `n` values.
    pub(crate) fn decode_raw(n: usize, buf: &mut impl Buf) -> Result<Measures, StoreError> {
        if buf.remaining() < n * 8 {
            return Err(StoreError::Format("value block truncated"));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(buf.get_f64_le());
        }
        Ok(Measures::Raw(values))
    }

    /// Writes the v3 value block (tag + payload), dictionary-coding when
    /// that is strictly smaller than raw.
    pub(crate) fn encode_v3_into(&self, buf: &mut BytesMut) {
        let n = self.len();
        let mut interned: HashMap<u64, u32> = HashMap::new();
        let mut dict: Vec<f64> = Vec::new();
        let mut indices: Vec<u64> = Vec::with_capacity(n);
        for v in self.iter() {
            let next = dict.len() as u32;
            let idx = *interned.entry(v.to_bits()).or_insert_with(|| {
                dict.push(v);
                next
            });
            indices.push(u64::from(idx));
            if dict.len() > DICT_MAX {
                break;
            }
        }
        let width = if dict.is_empty() {
            0
        } else {
            PackedInts::width_for(dict.len() as u64 - 1)
        };
        let dict_bytes = 4 + dict.len() * 8 + 1 + PackedInts::byte_len(n, width);
        if dict.len() <= DICT_MAX && dict_bytes < n * 8 {
            buf.put_u8(VALUES_DICT);
            buf.put_u32_le(dict.len() as u32);
            for &v in &dict {
                buf.put_f64_le(v);
            }
            buf.put_u8(width as u8);
            buf.put_slice(PackedInts::pack(&indices, width).as_bytes());
        } else {
            buf.put_u8(VALUES_RAW);
            self.encode_raw_into(buf);
        }
    }

    /// The v3 value block as a fresh buffer.
    pub(crate) fn encode_v3(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + self.len() * 8);
        self.encode_v3_into(&mut buf);
        buf.freeze()
    }

    /// Reads a v3 value block of `n` values. Dictionary blocks stay
    /// packed; every index is validated against the dictionary bound so
    /// later accesses cannot go out of range even under
    /// `Verify::TrustDisk`.
    pub(crate) fn decode_v3(n: usize, buf: &mut impl Buf) -> Result<Measures, StoreError> {
        if buf.remaining() < 1 {
            return Err(StoreError::Format("value block missing codec tag"));
        }
        match buf.get_u8() {
            VALUES_RAW => Self::decode_raw(n, buf),
            VALUES_DICT => {
                if buf.remaining() < 4 {
                    return Err(StoreError::Format("dict header truncated"));
                }
                let ndict = buf.get_u32_le() as usize;
                if ndict > DICT_MAX || (n > 0 && ndict == 0) {
                    return Err(StoreError::Format("dict size out of range"));
                }
                if buf.remaining() < ndict * 8 + 1 {
                    return Err(StoreError::Format("dict values truncated"));
                }
                let mut dict = Vec::with_capacity(ndict);
                for _ in 0..ndict {
                    dict.push(buf.get_f64_le());
                }
                let width = u32::from(buf.get_u8());
                if width > 32 {
                    return Err(StoreError::Format("dict index width out of range"));
                }
                let packed_len = PackedInts::byte_len(n, width);
                if buf.remaining() < packed_len {
                    return Err(StoreError::Format("dict indices truncated"));
                }
                let packed_bytes = buf.copy_to_bytes(packed_len);
                let Some(indices) = PackedInts::from_bytes(&packed_bytes, width, n) else {
                    return Err(StoreError::Format("dict indices malformed"));
                };
                // Validate every index against the dictionary bound,
                // block-decoding through the dispatched unpack kernel.
                let mut ib = [0u64; UNPACK_BLOCK];
                let mut start = 0usize;
                while start < n {
                    let got = indices.unpack_into(start, &mut ib);
                    if ib[..got].iter().any(|&i| i >= ndict as u64) {
                        return Err(StoreError::Format("dict index out of range"));
                    }
                    start += got;
                }
                Ok(Measures::Dict { dict, indices })
            }
            _ => Err(StoreError::Format("unknown values codec tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_v3(values: Vec<f64>) -> Measures {
        let m = Measures::Raw(values);
        let bytes = m.encode_v3();
        let back = Measures::decode_v3(m.len(), &mut bytes.clone()).unwrap();
        assert_eq!(back, m);
        back
    }

    #[test]
    fn low_cardinality_measures_dictionary_code() {
        let values: Vec<f64> = (0..10_000).map(|i| f64::from(i % 7) * 0.5).collect();
        let m = Measures::Raw(values);
        let v3 = m.encode_v3();
        assert_eq!(v3[0], VALUES_DICT);
        assert!(
            v3.len() * 8 < m.len() * 8,
            "dict form much smaller: {} vs {}",
            v3.len(),
            m.len() * 8
        );
        let back = Measures::decode_v3(m.len(), &mut v3.clone()).unwrap();
        assert!(matches!(back, Measures::Dict { .. }), "stays packed");
        assert_eq!(back, m);
    }

    #[test]
    fn high_cardinality_measures_stay_raw() {
        let values: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.123).collect();
        let m = Measures::Raw(values);
        let v3 = m.encode_v3();
        assert_eq!(v3[0], VALUES_RAW);
        assert_eq!(v3.len(), 1 + m.len() * 8);
        round_trip_v3((0..1000).map(|i| f64::from(i) * 0.123).collect());
    }

    #[test]
    fn special_values_round_trip_bit_identically() {
        let values = vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            0.0,
            f64::NAN,
            -0.0,
        ];
        let m = Measures::Raw(values.clone());
        let bytes = m.encode_v3();
        let back = Measures::decode_v3(values.len(), &mut bytes.clone()).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(
                back.get(i).to_bits(),
                v.to_bits(),
                "value {i} not bit-identical"
            );
        }
    }

    #[test]
    fn empty_and_singleton_round_trip() {
        round_trip_v3(vec![]);
        round_trip_v3(vec![42.5]);
    }

    #[test]
    fn decode_rejects_bad_dict_blocks() {
        let m = Measures::Raw((0..100).map(|i| f64::from(i % 3)).collect());
        let bytes = m.encode_v3();
        assert_eq!(bytes[0], VALUES_DICT);
        // Truncations at every point must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                Measures::decode_v3(100, &mut bytes.slice(..cut)).is_err(),
                "cut at {cut} decoded"
            );
        }
        // An out-of-range packed index must be caught at decode.
        let mut evil = BytesMut::new();
        evil.put_u8(VALUES_DICT);
        evil.put_u32_le(2);
        evil.put_f64_le(1.0);
        evil.put_f64_le(2.0);
        evil.put_u8(8); // 8-bit indices
        evil.put_slice(&[0, 1, 7]); // 7 >= ndict
        assert!(Measures::decode_v3(3, &mut evil.freeze()).is_err());
        // Unknown tag.
        assert!(Measures::decode_v3(0, &mut Bytes::from(vec![9u8])).is_err());
    }

    #[test]
    fn push_thaws_dictionary_form() {
        let m = Measures::Raw((0..50).map(|i| f64::from(i % 2)).collect());
        let bytes = m.encode_v3();
        let mut back = Measures::decode_v3(50, &mut bytes.clone()).unwrap();
        assert!(matches!(back, Measures::Dict { .. }));
        back.push(9.75);
        assert_eq!(back.len(), 51);
        assert_eq!(back.get(50), 9.75);
        assert_eq!(back.get(3), 1.0);
    }
}
