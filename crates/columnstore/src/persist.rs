//! On-disk layout of a master relation.
//!
//! One directory per relation:
//!
//! ```text
//! manifest.gbi   header: magic, record count, edge count, partition width
//! part_NNNN.gbi  the measure+bitmap columns of one vertical sub-relation
//! views.gbi      graph-view bitmaps and aggregate-view columns
//! ```
//!
//! Each `part` file holds the columns of one vertical sub-relation. A
//! column is stored as two *separately addressable* blocks — the encoded
//! presence bitmap, then the raw value vector — with both byte lengths in
//! the file's directory. That split is what lets the disk-resident store
//! ([`crate::disk`]) fetch a bitmap column `b_i` without touching the
//! measures `m_i`, exactly the access pattern the paper's cost model
//! charges for.
//!
//! ```text
//! part file := ncols u32, (bitmap_len u64, values_len u64) × ncols,
//!              then per column: bitmap bytes, value bytes
//! ```

use std::fs;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphbi_bitmap::Bitmap;

use crate::column::SparseColumn;
use crate::relation::MasterRelation;
use crate::StoreError;

pub(crate) const MANIFEST_MAGIC: u32 = 0x4742_5232; // "GBR2"

/// Writes `relation` under `dir` (created if missing). Returns the total
/// bytes written — the relation's disk footprint.
pub fn save(relation: &MasterRelation, dir: &Path) -> Result<u64, StoreError> {
    fs::create_dir_all(dir)?;
    let mut total = 0u64;

    let mut manifest = BytesMut::new();
    manifest.put_u32_le(MANIFEST_MAGIC);
    manifest.put_u64_le(relation.record_count());
    manifest.put_u32_le(u32::try_from(relation.edge_count()).expect("edge count fits u32"));
    manifest
        .put_u32_le(u32::try_from(relation.partition_width()).expect("partition width fits u32"));
    total += write_file(&dir.join("manifest.gbi"), &manifest.freeze())?;

    let width = relation.partition_width();
    for (p, chunk) in relation.columns().chunks(width).enumerate() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::try_from(chunk.len()).expect("chunk fits u32"));
        let blocks: Vec<(Bytes, Bytes)> = chunk
            .iter()
            .map(|c| (c.presence().encode(), c.encode_values()))
            .collect();
        for (b, v) in &blocks {
            buf.put_u64_le(b.len() as u64);
            buf.put_u64_le(v.len() as u64);
        }
        for (b, v) in &blocks {
            buf.put_slice(b);
            buf.put_slice(v);
        }
        total += write_file(&dir.join(format!("part_{p:04}.gbi")), &buf.freeze())?;
    }
    if relation.edge_count() == 0 {
        // Keep at least one (empty) partition file so load() has a fixpoint.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        total += write_file(&dir.join("part_0000.gbi"), &buf.freeze())?;
    }

    let (view_bitmaps, agg_views) = relation.views_parts();
    let mut buf = BytesMut::new();
    buf.put_u32_le(u32::try_from(view_bitmaps.len()).expect("view count fits u32"));
    for b in view_bitmaps {
        let e = b.encode();
        buf.put_u64_le(e.len() as u64);
        buf.put_slice(&e);
    }
    buf.put_u32_le(u32::try_from(agg_views.len()).expect("agg view count fits u32"));
    for c in agg_views {
        let e = c.encode();
        buf.put_u64_le(e.len() as u64);
        buf.put_slice(&e);
    }
    total += write_file(&dir.join("views.gbi"), &buf.freeze())?;

    Ok(total)
}

fn write_file(path: &Path, bytes: &Bytes) -> Result<u64, StoreError> {
    fs::write(path, bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a relation previously written by [`save`].
pub fn load(dir: &Path) -> Result<MasterRelation, StoreError> {
    let manifest = fs::read(dir.join("manifest.gbi"))?;
    let mut m = Bytes::from(manifest);
    if m.remaining() < 20 {
        return Err(StoreError::Format("manifest too short"));
    }
    if m.get_u32_le() != MANIFEST_MAGIC {
        return Err(StoreError::Format("bad manifest magic"));
    }
    let record_count = m.get_u64_le();
    let edge_count = m.get_u32_le() as usize;
    let partition_width = m.get_u32_le() as usize;
    if partition_width == 0 {
        return Err(StoreError::Format("zero partition width"));
    }

    let mut columns = Vec::with_capacity(edge_count);
    let parts = edge_count.div_ceil(partition_width).max(1);
    for p in 0..parts {
        let bytes = fs::read(dir.join(format!("part_{p:04}.gbi")))?;
        let mut buf = Bytes::from(bytes);
        if buf.remaining() < 4 {
            return Err(StoreError::Format("partition file too short"));
        }
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < n * 16 {
            return Err(StoreError::Format("partition directory truncated"));
        }
        let lens: Vec<(u64, u64)> = (0..n)
            .map(|_| (buf.get_u64_le(), buf.get_u64_le()))
            .collect();
        for (blen, vlen) in lens {
            let blen = usize::try_from(blen).map_err(|_| StoreError::Format("bitmap too large"))?;
            let vlen = usize::try_from(vlen).map_err(|_| StoreError::Format("values too large"))?;
            if buf.remaining() < blen + vlen {
                return Err(StoreError::Format("column bytes truncated"));
            }
            let mut bitmap_bytes = buf.copy_to_bytes(blen);
            let presence = Bitmap::decode(&mut bitmap_bytes)?;
            let mut value_bytes = buf.copy_to_bytes(vlen);
            columns.push(SparseColumn::decode_values(presence, &mut value_bytes)?);
        }
    }
    if columns.len() != edge_count {
        return Err(StoreError::Format("column count mismatch"));
    }

    let mut relation = MasterRelation::from_columns(columns, partition_width, record_count);

    let views_path = dir.join("views.gbi");
    if views_path.exists() {
        let bytes = fs::read(views_path)?;
        let mut buf = Bytes::from(bytes);
        let mut bitmaps = Vec::new();
        if buf.remaining() < 4 {
            return Err(StoreError::Format("views file too short"));
        }
        for _ in 0..buf.get_u32_le() {
            if buf.remaining() < 8 {
                return Err(StoreError::Format("view directory truncated"));
            }
            let len = buf.get_u64_le() as usize;
            let mut b = buf.copy_to_bytes(len);
            bitmaps.push(Bitmap::decode(&mut b)?);
        }
        let mut aggs = Vec::new();
        if buf.remaining() < 4 {
            return Err(StoreError::Format("agg view count missing"));
        }
        for _ in 0..buf.get_u32_le() {
            if buf.remaining() < 8 {
                return Err(StoreError::Format("agg view directory truncated"));
            }
            let len = buf.get_u64_le() as usize;
            let mut b = buf.copy_to_bytes(len);
            aggs.push(SparseColumn::decode(&mut b)?);
        }
        relation.restore_views(bitmaps, aggs);
    }

    Ok(relation)
}

/// Disk footprint of a saved relation directory, in bytes.
pub fn disk_size(dir: &Path) -> Result<u64, StoreError> {
    let mut total = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.path().extension().is_some_and(|e| e == "gbi") {
            total += entry.metadata()?.len();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iostats::IoStats;
    use crate::relation::RelationBuilder;
    use graphbi_graph::EdgeId;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graphbi-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn build(n_edges: usize, width: usize) -> MasterRelation {
        let mut b = RelationBuilder::new(n_edges);
        for rid in 0..200u32 {
            let edges: Vec<(EdgeId, f64)> = (0..5)
                .map(|i| {
                    (
                        EdgeId((rid * 7 + i * 13) % n_edges as u32),
                        f64::from(rid + i),
                    )
                })
                .collect();
            let mut sorted = edges;
            sorted.sort_by_key(|&(e, _)| e);
            sorted.dedup_by_key(|&mut (e, _)| e);
            b.add_record(&sorted);
        }
        let mut r = b.finish_with_width(width);
        r.add_view_bitmap([1u32, 5, 9].into_iter().collect());
        let mut cb = crate::column::ColumnBuilder::new();
        cb.push(3, 2.5);
        cb.push(9, 4.5);
        r.add_agg_view(cb.finish());
        r
    }

    #[test]
    fn save_load_round_trip_multi_partition() {
        let dir = tmpdir("roundtrip");
        let r = build(50, 16); // 4 partitions
        let written = save(&r, &dir).unwrap();
        assert!(written > 0);
        assert_eq!(disk_size(&dir).unwrap(), written);
        let back = load(&dir).unwrap();
        assert_eq!(back.record_count(), r.record_count());
        assert_eq!(back.edge_count(), r.edge_count());
        assert_eq!(back.partition_count(), 4);
        let mut s1 = IoStats::new();
        let mut s2 = IoStats::new();
        for e in 0..50u32 {
            assert_eq!(
                back.edge_measures(EdgeId(e), &mut s1),
                r.edge_measures(EdgeId(e), &mut s2)
            );
        }
        assert_eq!(back.view_count(), 1);
        assert_eq!(back.agg_view_count(), 1);
        assert_eq!(
            back.agg_view(crate::AggViewId(0), &mut s1).get(9),
            Some(4.5)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_manifest() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.gbi"), b"nonsense").unwrap();
        assert!(load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = tmpdir("empty");
        let r = RelationBuilder::new(0).finish();
        save(&r, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.edge_count(), 0);
        assert_eq!(back.record_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
