//! Crash-safe on-disk layout of a master relation (formats v2 and v3).
//!
//! One directory per relation:
//!
//! ```text
//! manifest.gbi                 framed commit pointer (magic, length, CRC)
//! gNNNNNNNNNNNN-part_NNNN.gbi  the columns of one vertical sub-relation
//! gNNNNNNNNNNNN-views.gbi      graph-view bitmaps + aggregate-view columns
//! gNNNNNNNNNNNN-<name>         caller-provided sidecar blobs (framed)
//! ```
//!
//! Crash safety rests on two rules:
//!
//! * **Data files are immutable and generation-named.** A save writes a
//!   complete new generation of files next to the live one and never
//!   rewrites existing bytes; a crash mid-save leaves the previous
//!   generation untouched.
//! * **The manifest is the atomic commit point.** It is written to a temp
//!   file, fsynced, and renamed over `manifest.gbi`. Before the rename the
//!   store *is* the old generation; after it, the new one. Old-generation
//!   files are garbage-collected only after the rename (and re-collected
//!   by the next save if a crash interrupts collection).
//!
//! Every payload is guarded by a CRC32 ([`crate::vfs::crc32`]): each
//! column's bitmap and value blocks carry checksums in the partition
//! directory, each view block in the views directory, the directories and
//! the manifest payload are themselves checksummed, and sidecars are
//! framed with magic + length + CRC. A flipped bit anywhere surfaces as
//! [`StoreError::Corrupt`] on read — never a panic or a silently wrong
//! answer.
//!
//! ```text
//! manifest  := MANIFEST_MAGIC u32, payload_len u32, payload, crc32(payload)
//! payload   := version u32 (2 or 3), generation u64, record_count u64,
//!              edge_count u32, partition_width u32
//! sidecar   := SIDECAR_MAGIC u32, len u32, crc u32, payload
//!
//! v2 part   := ncols u32,
//!              (bitmap_len u64, values_len u64,
//!               bitmap_crc u32, values_crc u32) × ncols,
//!              dir_crc u32, then per column: bitmap bytes, value bytes
//! v2 views  := nviews u32, (len u64, crc u32) × nviews,
//!              naggs u32, (len u64, crc u32) × naggs,
//!              dir_crc u32, then the view payloads, then the agg payloads
//!
//! v3 part   := PART_MAGIC_V3 u32, ncols u32, wb u8, wv u8,
//!              ncols × wb-bit packed bitmap lengths,
//!              ncols × wv-bit packed values lengths,
//!              (bitmap_crc u32, values_crc u32) × ncols,
//!              dir_crc u32, then per column: bitmap bytes, value bytes
//! v3 views  := VIEWS_MAGIC_V3 u32, then the v2 views layout
//! ```
//!
//! Format v3 (the default writer output since this version) keeps the v2
//! directory+CRC architecture but compresses the payloads: bitmaps use
//! the v3 container codecs (Elias-Fano, gamma runs, frame-of-reference),
//! value blocks carry a codec tag (raw or dictionary + packed indices),
//! and the part directory's block lengths are frame-of-reference
//! bit-packed. Every data file is self-describing via its leading magic,
//! so a reader handles mixed v2/v3 generations (e.g. a v2 base pinned by
//! a snapshot while compaction publishes v3) without any manifest-level
//! flag, and v2 stores load unchanged — backward compatibility is
//! reader-side, the writer always emits the manifest version matching
//! what it wrote.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphbi_bitmap::intcodec::PackedInts;
use graphbi_bitmap::Bitmap;

use crate::column::SparseColumn;
use crate::relation::MasterRelation;
use crate::vfs::{crc32, OsVfs, Verify, Vfs};
use crate::StoreError;

pub(crate) const MANIFEST_MAGIC: u32 = 0x4742_5232; // "GBR2"
pub(crate) const SIDECAR_MAGIC: u32 = 0x4742_5344; // "GBSD"
/// Leading magic of a v3 partition file. A v2 part file starts with its
/// column count, which open() bounds against the manifest's edge count —
/// the collision would need a relation of 1.19 billion edge columns.
pub const PART_MAGIC_V3: u32 = 0x4742_5033; // "GBP3"
/// Leading magic of a v3 views file (v2 starts with the view count).
pub const VIEWS_MAGIC_V3: u32 = 0x4742_5633; // "GBV3"
pub(crate) const FORMAT_VERSION_V2: u32 = 2;
pub(crate) const FORMAT_VERSION_V3: u32 = 3;

/// Which on-disk format a save emits. Readers accept both regardless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FormatVersion {
    /// Raw container and value payloads (the legacy format).
    V2,
    /// Compressed payloads: v3 bitmap containers, codec-tagged value
    /// blocks, bit-packed part directories. The default.
    #[default]
    V3,
}

impl FormatVersion {
    fn manifest_version(self) -> u32 {
        match self {
            FormatVersion::V2 => FORMAT_VERSION_V2,
            FormatVersion::V3 => FORMAT_VERSION_V3,
        }
    }
}

/// The manifest file name — the store's atomic commit pointer.
pub const MANIFEST_FILE: &str = "manifest.gbi";
const MANIFEST_TMP: &str = "manifest.gbi.tmp";

/// Bytes of one partition-directory entry (two lengths, two CRCs).
pub(crate) const PART_DIR_ENTRY: usize = 24;
/// Bytes of one views-directory entry (length + CRC).
pub(crate) const VIEW_DIR_ENTRY: usize = 12;

// ---------------------------------------------------------------------------
// Generation-scoped file names.

pub(crate) fn part_file_name(generation: u64, p: usize) -> String {
    format!("g{generation:012}-part_{p:04}.gbi")
}

pub(crate) fn views_file_name(generation: u64) -> String {
    format!("g{generation:012}-views.gbi")
}

pub(crate) fn sidecar_file_name(generation: u64, name: &str) -> String {
    format!("g{generation:012}-{name}")
}

/// Parses the generation prefix of a data-file name (`g{gen:012}-…`).
pub(crate) fn parse_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('g')?;
    let (digits, rest) = rest.split_at_checked(12)?;
    if !rest.starts_with('-') {
        return None;
    }
    digits.parse().ok()
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn corrupt(path: &Path, what: &'static str) -> StoreError {
    StoreError::Corrupt {
        file: file_name(path),
        what,
    }
}

/// Maps I/O failures while reading a file the manifest points at: a
/// missing or truncated generation file is partial state, not an
/// environmental error.
pub(crate) fn open_read_err(path: &Path, e: std::io::Error) -> StoreError {
    match e.kind() {
        std::io::ErrorKind::NotFound => corrupt(path, "generation file missing"),
        std::io::ErrorKind::UnexpectedEof => corrupt(path, "generation file truncated"),
        _ => StoreError::Io(e),
    }
}

// ---------------------------------------------------------------------------
// Manifest.

/// Decoded manifest: which generation is live, and the relation's shape.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Manifest {
    pub version: u32,
    pub generation: u64,
    pub record_count: u64,
    pub edge_count: usize,
    pub partition_width: usize,
}

const MANIFEST_PAYLOAD_LEN: usize = 28;

fn encode_manifest(generation: u64, relation: &MasterRelation, format: FormatVersion) -> Bytes {
    let mut payload = BytesMut::with_capacity(MANIFEST_PAYLOAD_LEN);
    payload.put_u32_le(format.manifest_version());
    payload.put_u64_le(generation);
    payload.put_u64_le(relation.record_count());
    payload.put_u32_le(u32::try_from(relation.edge_count()).expect("edge count fits u32"));
    payload
        .put_u32_le(u32::try_from(relation.partition_width()).expect("partition width fits u32"));
    let mut out = BytesMut::with_capacity(12 + MANIFEST_PAYLOAD_LEN);
    out.put_u32_le(MANIFEST_MAGIC);
    out.put_u32_le(MANIFEST_PAYLOAD_LEN as u32);
    out.put_u32_le(crc32(&payload));
    out.put_slice(&payload);
    out.freeze()
}

/// Reads and fully verifies the manifest. The manifest CRC is *always*
/// checked regardless of [`Verify`]: it is 28 bytes, and everything else
/// hangs off the generation it names.
pub(crate) fn read_manifest(vfs: &dyn Vfs, dir: &Path) -> Result<Manifest, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = vfs.read(&path).map_err(StoreError::Io)?;
    let mut m = Bytes::from(bytes);
    if m.remaining() < 12 {
        return Err(corrupt(&path, "manifest frame truncated"));
    }
    if m.get_u32_le() != MANIFEST_MAGIC {
        return Err(corrupt(&path, "bad manifest magic"));
    }
    let payload_len = m.get_u32_le() as usize;
    let stored_crc = m.get_u32_le();
    if payload_len != MANIFEST_PAYLOAD_LEN || m.remaining() < payload_len {
        return Err(corrupt(&path, "manifest payload truncated"));
    }
    let payload = m.copy_to_bytes(payload_len);
    if crc32(&payload) != stored_crc {
        return Err(corrupt(&path, "manifest checksum mismatch"));
    }
    let mut p = payload;
    let version = p.get_u32_le();
    if version != FORMAT_VERSION_V2 && version != FORMAT_VERSION_V3 {
        return Err(corrupt(&path, "unsupported format version"));
    }
    let generation = p.get_u64_le();
    let record_count = p.get_u64_le();
    let edge_count = p.get_u32_le() as usize;
    let partition_width = p.get_u32_le() as usize;
    if partition_width == 0 {
        return Err(corrupt(&path, "zero partition width"));
    }
    Ok(Manifest {
        version,
        generation,
        record_count,
        edge_count,
        partition_width,
    })
}

// ---------------------------------------------------------------------------
// Save.

/// Writes `relation` under `dir` through the OS filesystem. Returns the
/// total bytes written — the relation's disk footprint.
pub fn save(relation: &MasterRelation, dir: &Path) -> Result<u64, StoreError> {
    save_with(&OsVfs, relation, &[], dir)
}

/// Writes `relation` (plus caller-provided `sidecars`, each a named blob
/// published atomically with the relation) under `dir` through `vfs`.
///
/// The save is crash-safe: data files of a fresh generation are written
/// and fsynced first, then the manifest is committed via temp file +
/// fsync + atomic rename. A crash at any operation leaves the store
/// openable as either the complete old state or the complete new state.
pub fn save_with(
    vfs: &dyn Vfs,
    relation: &MasterRelation,
    sidecars: &[(&str, &[u8])],
    dir: &Path,
) -> Result<u64, StoreError> {
    save_with_keep(vfs, relation, sidecars, dir, &[])
}

/// [`save_with`], but the trailing garbage collection additionally spares
/// the generations listed in `keep`. MVCC compaction passes the
/// generations still pinned by live snapshots here; they are reclaimed by
/// a later [`collect_garbage_keeping`] once unpinned.
pub fn save_with_keep(
    vfs: &dyn Vfs,
    relation: &MasterRelation,
    sidecars: &[(&str, &[u8])],
    dir: &Path,
    keep: &[u64],
) -> Result<u64, StoreError> {
    save_with_keep_format(vfs, relation, sidecars, dir, keep, FormatVersion::default())
}

/// [`save_with_keep`] with an explicit on-disk [`FormatVersion`] — the
/// back-compat test matrix writes legacy v2 stores through this.
pub fn save_with_keep_format(
    vfs: &dyn Vfs,
    relation: &MasterRelation,
    sidecars: &[(&str, &[u8])],
    dir: &Path,
    keep: &[u64],
    format: FormatVersion,
) -> Result<u64, StoreError> {
    vfs.create_dir_all(dir)?;
    let generation = next_generation(vfs, dir);
    let mut total = 0u64;

    let width = relation.partition_width();
    let mut nparts = 0usize;
    for (p, chunk) in relation.columns().chunks(width).enumerate() {
        total += write_durable(
            vfs,
            &dir.join(part_file_name(generation, p)),
            &encode_part(chunk, format),
        )?;
        nparts += 1;
    }
    if nparts == 0 {
        // Keep at least one (empty) partition file so open() has a fixpoint.
        total += write_durable(
            vfs,
            &dir.join(part_file_name(generation, 0)),
            &encode_part(&[], format),
        )?;
    }

    let (view_bitmaps, agg_views) = relation.views_parts();
    total += write_durable(
        vfs,
        &dir.join(views_file_name(generation)),
        &encode_views(view_bitmaps, agg_views, format),
    )?;

    for (name, payload) in sidecars {
        total += write_durable(
            vfs,
            &dir.join(sidecar_file_name(generation, name)),
            &frame_sidecar(payload),
        )?;
    }

    // Atomic publish: every data byte above is durable before the manifest
    // can name it.
    let tmp = dir.join(MANIFEST_TMP);
    total += write_durable(vfs, &tmp, &encode_manifest(generation, relation, format))?;
    vfs.rename(&tmp, &dir.join(MANIFEST_FILE))?;
    vfs.fsync_dir(dir)?;

    collect_garbage(vfs, dir, generation, keep)?;
    Ok(total)
}

fn write_durable(vfs: &dyn Vfs, path: &Path, bytes: &Bytes) -> Result<u64, StoreError> {
    vfs.write(path, bytes)?;
    vfs.fsync(path)?;
    Ok(bytes.len() as u64)
}

/// One past the newest generation visible in the directory — from the
/// manifest if it parses, and from leftover file names either way (so a
/// crashed save's orphans are never name-collided with).
fn next_generation(vfs: &dyn Vfs, dir: &Path) -> u64 {
    let mut max = 0u64;
    if let Ok(m) = read_manifest(vfs, dir) {
        max = m.generation;
    }
    if let Ok(files) = vfs.list(dir) {
        for f in files {
            if let Some(g) = f
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_generation)
            {
                max = max.max(g);
            }
        }
    }
    max + 1
}

/// Removes every generation-named file that is neither part of `live` nor
/// listed in `keep`, plus any leftover manifest temp file. Runs only after
/// the manifest rename; a crash here strands garbage the next save
/// re-collects.
fn collect_garbage(vfs: &dyn Vfs, dir: &Path, live: u64, keep: &[u64]) -> Result<(), StoreError> {
    for f in vfs.list(dir)? {
        let Some(name) = f.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name == MANIFEST_TMP {
            vfs.remove(&f)?;
            continue;
        }
        if let Some(g) = parse_generation(name) {
            if g != live && !keep.contains(&g) {
                vfs.remove(&f)?;
            }
        }
    }
    Ok(())
}

/// The generation the manifest currently names — what a fresh open would
/// read. Errors are the manifest's own (missing, torn, corrupt).
pub fn live_generation(vfs: &dyn Vfs, dir: &Path) -> Result<u64, StoreError> {
    read_manifest(vfs, dir).map(|m| m.generation)
}

/// Standalone sweep of superseded generations, sparing `keep` — the MVCC
/// store calls this when the last snapshot pinning an old generation is
/// dropped. The live generation is re-read from the manifest so a
/// concurrent publish can never have its own files collected.
pub fn collect_garbage_keeping(vfs: &dyn Vfs, dir: &Path, keep: &[u64]) -> Result<(), StoreError> {
    let live = live_generation(vfs, dir)?;
    collect_garbage(vfs, dir, live, keep)
}

fn encode_part(chunk: &[SparseColumn], format: FormatVersion) -> Bytes {
    match format {
        FormatVersion::V2 => encode_part_v2(chunk),
        FormatVersion::V3 => encode_part_v3(chunk),
    }
}

fn encode_part_v2(chunk: &[SparseColumn]) -> Bytes {
    let blocks: Vec<(Bytes, Bytes)> = chunk
        .iter()
        .map(|c| (c.presence().encode(), c.encode_values()))
        .collect();
    let mut buf = BytesMut::new();
    buf.put_u32_le(u32::try_from(chunk.len()).expect("chunk fits u32"));
    for (b, v) in &blocks {
        buf.put_u64_le(b.len() as u64);
        buf.put_u64_le(v.len() as u64);
        buf.put_u32_le(crc32(b));
        buf.put_u32_le(crc32(v));
    }
    let dir_crc = crc32(&buf);
    buf.put_u32_le(dir_crc);
    for (b, v) in &blocks {
        buf.put_slice(b);
        buf.put_slice(v);
    }
    buf.freeze()
}

fn encode_part_v3(chunk: &[SparseColumn]) -> Bytes {
    let blocks: Vec<(Bytes, Bytes)> = chunk
        .iter()
        .map(|c| (c.presence().encode_v3(), c.encode_values_v3()))
        .collect();
    let n = blocks.len();
    let max_b = blocks
        .iter()
        .map(|(b, _)| b.len() as u64)
        .max()
        .unwrap_or(0);
    let max_v = blocks
        .iter()
        .map(|(_, v)| v.len() as u64)
        .max()
        .unwrap_or(0);
    let wb = PackedInts::width_for(max_b);
    let wv = PackedInts::width_for(max_v);
    let blens: Vec<u64> = blocks.iter().map(|(b, _)| b.len() as u64).collect();
    let vlens: Vec<u64> = blocks.iter().map(|(_, v)| v.len() as u64).collect();
    let mut buf = BytesMut::new();
    buf.put_u32_le(PART_MAGIC_V3);
    buf.put_u32_le(u32::try_from(n).expect("chunk fits u32"));
    buf.put_u8(wb as u8);
    buf.put_u8(wv as u8);
    buf.put_slice(PackedInts::pack(&blens, wb).as_bytes());
    buf.put_slice(PackedInts::pack(&vlens, wv).as_bytes());
    for (b, v) in &blocks {
        buf.put_u32_le(crc32(b));
        buf.put_u32_le(crc32(v));
    }
    let dir_crc = crc32(&buf);
    buf.put_u32_le(dir_crc);
    for (b, v) in &blocks {
        buf.put_slice(b);
        buf.put_slice(v);
    }
    buf.freeze()
}

fn encode_views(
    view_bitmaps: &[Bitmap],
    agg_views: &[SparseColumn],
    format: FormatVersion,
) -> Bytes {
    let (vb, ab): (Vec<Bytes>, Vec<Bytes>) = match format {
        FormatVersion::V2 => (
            view_bitmaps.iter().map(Bitmap::encode).collect(),
            agg_views.iter().map(SparseColumn::encode).collect(),
        ),
        FormatVersion::V3 => (
            view_bitmaps.iter().map(Bitmap::encode_v3).collect(),
            agg_views.iter().map(SparseColumn::encode_v3).collect(),
        ),
    };
    let mut buf = BytesMut::new();
    if format == FormatVersion::V3 {
        buf.put_u32_le(VIEWS_MAGIC_V3);
    }
    buf.put_u32_le(u32::try_from(vb.len()).expect("view count fits u32"));
    for e in &vb {
        buf.put_u64_le(e.len() as u64);
        buf.put_u32_le(crc32(e));
    }
    buf.put_u32_le(u32::try_from(ab.len()).expect("agg view count fits u32"));
    for e in &ab {
        buf.put_u64_le(e.len() as u64);
        buf.put_u32_le(crc32(e));
    }
    let dir_crc = crc32(&buf);
    buf.put_u32_le(dir_crc);
    for e in &vb {
        buf.put_slice(e);
    }
    for e in &ab {
        buf.put_slice(e);
    }
    buf.freeze()
}

fn frame_sidecar(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + payload.len());
    buf.put_u32_le(SIDECAR_MAGIC);
    buf.put_u32_le(u32::try_from(payload.len()).expect("sidecar fits u32"));
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Load.

/// Loads a relation previously written by [`save`], verifying checksums.
pub fn load(dir: &Path) -> Result<MasterRelation, StoreError> {
    load_with(&OsVfs, dir, Verify::Checksums)
}

/// Loads a relation through `vfs`. `verify` chooses whether payload CRCs
/// are checked ([`Verify::TrustDisk`] is the fuzzer's teeth-test hook;
/// structural bounds and the manifest CRC are checked regardless).
pub fn load_with(vfs: &dyn Vfs, dir: &Path, verify: Verify) -> Result<MasterRelation, StoreError> {
    let manifest = read_manifest(vfs, dir)?;
    let parts = manifest
        .edge_count
        .div_ceil(manifest.partition_width)
        .max(1);

    let mut columns = Vec::with_capacity(manifest.edge_count);
    for p in 0..parts {
        let path = dir.join(part_file_name(manifest.generation, p));
        let bytes = vfs.read(&path).map_err(|e| open_read_err(&path, e))?;
        decode_part(&path, &bytes, verify, manifest.edge_count, &mut columns)?;
    }
    if columns.len() != manifest.edge_count {
        return Err(StoreError::Format("column count mismatch"));
    }

    let mut relation =
        MasterRelation::from_columns(columns, manifest.partition_width, manifest.record_count);

    let path = dir.join(views_file_name(manifest.generation));
    let bytes = vfs.read(&path).map_err(|e| open_read_err(&path, e))?;
    let (bitmaps, aggs) = decode_views(&path, &bytes, verify)?;
    relation.restore_views(bitmaps, aggs);
    Ok(relation)
}

fn decode_part(
    path: &Path,
    bytes: &[u8],
    verify: Verify,
    edge_count: usize,
    columns: &mut Vec<SparseColumn>,
) -> Result<(), StoreError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(corrupt(path, "partition file truncated"));
    }
    if u32::from_le_bytes(bytes[..4].try_into().unwrap()) == PART_MAGIC_V3 {
        return decode_part_v3(path, bytes, verify, edge_count, columns);
    }
    let n = buf.get_u32_le() as usize;
    if columns.len() + n > edge_count {
        return Err(corrupt(path, "partition column count out of range"));
    }
    if buf.remaining() < n * PART_DIR_ENTRY + 4 {
        return Err(corrupt(path, "partition directory truncated"));
    }
    let header_len = 4 + n * PART_DIR_ENTRY;
    let dir_crc = u32::from_le_bytes(bytes[header_len..header_len + 4].try_into().unwrap());
    if crc32(&bytes[..header_len]) != dir_crc {
        return Err(corrupt(path, "partition directory checksum mismatch"));
    }
    let entries: Vec<(u64, u64, u32, u32)> = (0..n)
        .map(|_| {
            (
                buf.get_u64_le(),
                buf.get_u64_le(),
                buf.get_u32_le(),
                buf.get_u32_le(),
            )
        })
        .collect();
    buf.advance(4); // dir_crc
    for (blen, vlen, bcrc, vcrc) in entries {
        let blen = usize::try_from(blen).map_err(|_| corrupt(path, "bitmap block too large"))?;
        let vlen = usize::try_from(vlen).map_err(|_| corrupt(path, "values block too large"))?;
        if buf.remaining() < blen + vlen {
            return Err(corrupt(path, "column bytes truncated"));
        }
        let mut bitmap_bytes = buf.copy_to_bytes(blen);
        if verify == Verify::Checksums && crc32(&bitmap_bytes) != bcrc {
            return Err(corrupt(path, "bitmap checksum mismatch"));
        }
        let presence = Bitmap::decode(&mut bitmap_bytes)?;
        let mut value_bytes = buf.copy_to_bytes(vlen);
        if verify == Verify::Checksums && crc32(&value_bytes) != vcrc {
            return Err(corrupt(path, "values checksum mismatch"));
        }
        columns.push(SparseColumn::decode_values(presence, &mut value_bytes)?);
    }
    Ok(())
}

fn decode_part_v3(
    path: &Path,
    bytes: &[u8],
    verify: Verify,
    edge_count: usize,
    columns: &mut Vec<SparseColumn>,
) -> Result<(), StoreError> {
    if bytes.len() < 10 {
        return Err(corrupt(path, "partition file truncated"));
    }
    let n = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    if columns.len() + n > edge_count {
        return Err(corrupt(path, "partition column count out of range"));
    }
    let wb = u32::from(bytes[8]);
    let wv = u32::from(bytes[9]);
    if wb > 64 || wv > 64 {
        return Err(corrupt(path, "partition directory width out of range"));
    }
    let bl_bytes = PackedInts::byte_len(n, wb);
    let vl_bytes = PackedInts::byte_len(n, wv);
    let header_len = 10 + bl_bytes + vl_bytes + n * 8;
    if bytes.len() < header_len + 4 {
        return Err(corrupt(path, "partition directory truncated"));
    }
    let dir_crc = u32::from_le_bytes(bytes[header_len..header_len + 4].try_into().unwrap());
    if crc32(&bytes[..header_len]) != dir_crc {
        return Err(corrupt(path, "partition directory checksum mismatch"));
    }
    let blens = PackedInts::from_bytes(&bytes[10..10 + bl_bytes], wb, n)
        .ok_or_else(|| corrupt(path, "partition directory truncated"))?;
    let vlens = PackedInts::from_bytes(&bytes[10 + bl_bytes..10 + bl_bytes + vl_bytes], wv, n)
        .ok_or_else(|| corrupt(path, "partition directory truncated"))?;
    let mut crcs = Bytes::copy_from_slice(&bytes[10 + bl_bytes + vl_bytes..header_len]);
    let mut buf = Bytes::copy_from_slice(&bytes[header_len + 4..]);
    for i in 0..n {
        let bcrc = crcs.get_u32_le();
        let vcrc = crcs.get_u32_le();
        let blen =
            usize::try_from(blens.get(i)).map_err(|_| corrupt(path, "bitmap block too large"))?;
        let vlen =
            usize::try_from(vlens.get(i)).map_err(|_| corrupt(path, "values block too large"))?;
        if buf.remaining() < blen + vlen {
            return Err(corrupt(path, "column bytes truncated"));
        }
        let mut bitmap_bytes = buf.copy_to_bytes(blen);
        if verify == Verify::Checksums && crc32(&bitmap_bytes) != bcrc {
            return Err(corrupt(path, "bitmap checksum mismatch"));
        }
        let presence = Bitmap::decode(&mut bitmap_bytes)?;
        let mut value_bytes = buf.copy_to_bytes(vlen);
        if verify == Verify::Checksums && crc32(&value_bytes) != vcrc {
            return Err(corrupt(path, "values checksum mismatch"));
        }
        columns.push(SparseColumn::decode_values_v3(presence, &mut value_bytes)?);
    }
    Ok(())
}

type ViewBlocks = (Vec<Bitmap>, Vec<SparseColumn>);

fn decode_views(path: &Path, bytes: &[u8], verify: Verify) -> Result<ViewBlocks, StoreError> {
    let dir = parse_views_directory(path, bytes)?;
    let mut bitmaps = Vec::with_capacity(dir.views.len());
    for &(off, len, crc) in &dir.views {
        let mut b = block(path, bytes, off, len, crc, verify)?;
        bitmaps.push(Bitmap::decode(&mut b)?);
    }
    let mut aggs = Vec::with_capacity(dir.aggs.len());
    for &(off, len, crc) in &dir.aggs {
        let mut b = block(path, bytes, off, len, crc, verify)?;
        aggs.push(if dir.v3 {
            SparseColumn::decode_v3(&mut b)?
        } else {
            SparseColumn::decode(&mut b)?
        });
    }
    Ok((bitmaps, aggs))
}

fn block(
    path: &Path,
    bytes: &[u8],
    off: u64,
    len: u64,
    crc: u32,
    verify: Verify,
) -> Result<Bytes, StoreError> {
    let off = usize::try_from(off).map_err(|_| corrupt(path, "view block too large"))?;
    let len = usize::try_from(len).map_err(|_| corrupt(path, "view block too large"))?;
    let Some(slice) = off.checked_add(len).and_then(|end| bytes.get(off..end)) else {
        return Err(corrupt(path, "view block out of range"));
    };
    if verify == Verify::Checksums && crc32(slice) != crc {
        return Err(corrupt(path, "view block checksum mismatch"));
    }
    Ok(Bytes::copy_from_slice(slice))
}

/// The parsed views-file directory: `(offset, length, crc)` per block.
pub(crate) struct ViewsDirectory {
    pub views: Vec<(u64, u64, u32)>,
    pub aggs: Vec<(u64, u64, u32)>,
    /// True when the file carried the v3 magic: agg-view payloads are
    /// codec-tagged and must decode through [`SparseColumn::decode_v3`].
    pub v3: bool,
}

/// Parses (and structurally verifies) the views-file directory. The
/// directory CRC is always checked — it is tiny and every offset
/// computation depends on it.
pub(crate) fn parse_views_directory(
    path: &Path,
    bytes: &[u8],
) -> Result<ViewsDirectory, StoreError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(corrupt(path, "views file truncated"));
    }
    let v3 = u32::from_le_bytes(bytes[..4].try_into().unwrap()) == VIEWS_MAGIC_V3;
    let base = if v3 {
        buf.advance(4);
        if buf.remaining() < 4 {
            return Err(corrupt(path, "views file truncated"));
        }
        4
    } else {
        0
    };
    let nviews = buf.get_u32_le() as usize;
    if buf.remaining() < nviews * VIEW_DIR_ENTRY + 4 {
        return Err(corrupt(path, "views directory truncated"));
    }
    let view_entries: Vec<(u64, u32)> = (0..nviews)
        .map(|_| (buf.get_u64_le(), buf.get_u32_le()))
        .collect();
    let naggs = buf.get_u32_le() as usize;
    if buf.remaining() < naggs * VIEW_DIR_ENTRY + 4 {
        return Err(corrupt(path, "agg view directory truncated"));
    }
    let agg_entries: Vec<(u64, u32)> = (0..naggs)
        .map(|_| (buf.get_u64_le(), buf.get_u32_le()))
        .collect();
    let header_len = base + 4 + nviews * VIEW_DIR_ENTRY + 4 + naggs * VIEW_DIR_ENTRY;
    let dir_crc = u32::from_le_bytes(bytes[header_len..header_len + 4].try_into().unwrap());
    if crc32(&bytes[..header_len]) != dir_crc {
        return Err(corrupt(path, "views directory checksum mismatch"));
    }

    let total = bytes.len() as u64;
    let mut offset = (header_len + 4) as u64;
    let mut place = |entries: &[(u64, u32)]| -> Result<Vec<(u64, u64, u32)>, StoreError> {
        let mut out = Vec::with_capacity(entries.len());
        for &(len, crc) in entries {
            out.push((offset, len, crc));
            offset = offset
                .checked_add(len)
                .ok_or_else(|| corrupt(path, "view block out of range"))?;
            if offset > total {
                return Err(corrupt(path, "view block out of range"));
            }
        }
        Ok(out)
    };
    let views = place(&view_entries)?;
    let aggs = place(&agg_entries)?;
    Ok(ViewsDirectory { views, aggs, v3 })
}

/// True when the live generation carries a sidecar called `name`.
/// False when the directory has no readable manifest at all.
pub fn has_sidecar(vfs: &dyn Vfs, dir: &Path, name: &str) -> bool {
    read_manifest(vfs, dir)
        .map(|m| {
            vfs.read(&dir.join(sidecar_file_name(m.generation, name)))
                .is_ok()
        })
        .unwrap_or(false)
}

/// Reads and verifies the sidecar `name` of the live generation.
pub fn read_sidecar(vfs: &dyn Vfs, dir: &Path, name: &str) -> Result<Vec<u8>, StoreError> {
    let manifest = read_manifest(vfs, dir)?;
    read_sidecar_at(vfs, dir, manifest.generation, name)
}

/// Reads and verifies the sidecar `name` of a known generation.
pub(crate) fn read_sidecar_at(
    vfs: &dyn Vfs,
    dir: &Path,
    generation: u64,
    name: &str,
) -> Result<Vec<u8>, StoreError> {
    let path = dir.join(sidecar_file_name(generation, name));
    let bytes = vfs.read(&path).map_err(|e| open_read_err(&path, e))?;
    let mut buf = Bytes::from(bytes);
    if buf.remaining() < 12 {
        return Err(corrupt(&path, "sidecar frame truncated"));
    }
    if buf.get_u32_le() != SIDECAR_MAGIC {
        return Err(corrupt(&path, "bad sidecar magic"));
    }
    let len = buf.get_u32_le() as usize;
    let crc = buf.get_u32_le();
    if buf.remaining() < len {
        return Err(corrupt(&path, "sidecar payload truncated"));
    }
    let payload = buf.copy_to_bytes(len);
    if crc32(&payload) != crc {
        return Err(corrupt(&path, "sidecar checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Disk footprint of a saved relation directory, in bytes: every file of
/// the store (data files, sidecars, manifest).
pub fn disk_size(dir: &Path) -> Result<u64, StoreError> {
    let mut total = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            total += entry.metadata()?.len();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iostats::IoStats;
    use crate::relation::RelationBuilder;
    use crate::vfs::FaultVfs;
    use graphbi_graph::EdgeId;
    use std::fs;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graphbi-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn build(n_edges: usize, width: usize) -> MasterRelation {
        let mut b = RelationBuilder::new(n_edges);
        for rid in 0..200u32 {
            let edges: Vec<(EdgeId, f64)> = (0..5)
                .map(|i| {
                    (
                        EdgeId((rid * 7 + i * 13) % n_edges as u32),
                        f64::from(rid + i),
                    )
                })
                .collect();
            let mut sorted = edges;
            sorted.sort_by_key(|&(e, _)| e);
            sorted.dedup_by_key(|&mut (e, _)| e);
            b.add_record(&sorted);
        }
        let mut r = b.finish_with_width(width);
        r.add_view_bitmap([1u32, 5, 9].into_iter().collect());
        let mut cb = crate::column::ColumnBuilder::new();
        cb.push(3, 2.5);
        cb.push(9, 4.5);
        r.add_agg_view(cb.finish());
        r
    }

    #[test]
    fn save_load_round_trip_multi_partition() {
        let dir = tmpdir("roundtrip");
        let r = build(50, 16); // 4 partitions
        let written = save(&r, &dir).unwrap();
        assert!(written > 0);
        assert_eq!(disk_size(&dir).unwrap(), written);
        let back = load(&dir).unwrap();
        assert_eq!(back.record_count(), r.record_count());
        assert_eq!(back.edge_count(), r.edge_count());
        assert_eq!(back.partition_count(), 4);
        let mut s1 = IoStats::new();
        let mut s2 = IoStats::new();
        for e in 0..50u32 {
            assert_eq!(
                back.edge_measures(EdgeId(e), &mut s1),
                r.edge_measures(EdgeId(e), &mut s2)
            );
        }
        assert_eq!(back.view_count(), 1);
        assert_eq!(back.agg_view_count(), 1);
        assert_eq!(
            back.agg_view(crate::AggViewId(0), &mut s1).get(9),
            Some(4.5)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_manifest() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.gbi"), b"nonsense").unwrap();
        let Err(err) = load(&dir) else {
            panic!("corrupt manifest loaded")
        };
        assert!(err.is_corruption(), "typed corruption, got {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = tmpdir("empty");
        let r = RelationBuilder::new(0).finish();
        save(&r, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.edge_count(), 0);
        assert_eq!(back.record_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resave_bumps_generation_and_collects_garbage() {
        let dir = tmpdir("regen");
        let r = build(20, 8);
        save(&r, &dir).unwrap();
        let g1 = read_manifest(&OsVfs, &dir).unwrap().generation;
        let written = save(&r, &dir).unwrap();
        let g2 = read_manifest(&OsVfs, &dir).unwrap().generation;
        assert!(g2 > g1, "generation advances ({g1} -> {g2})");
        // Old generation fully collected: footprint equals the new save.
        assert_eq!(disk_size(&dir).unwrap(), written);
        for f in fs::read_dir(&dir).unwrap() {
            let name = f.unwrap().file_name().to_string_lossy().into_owned();
            if let Some(g) = parse_generation(&name) {
                assert_eq!(g, g2, "stale generation file {name} survived GC");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecars_round_trip_and_publish_atomically() {
        let dir = tmpdir("sidecar");
        let r = build(20, 8);
        save_with(
            &OsVfs,
            &r,
            &[("universe.txt", b"u1"), ("meta.txt", b"m1")],
            &dir,
        )
        .unwrap();
        assert_eq!(read_sidecar(&OsVfs, &dir, "universe.txt").unwrap(), b"u1");
        save_with(
            &OsVfs,
            &r,
            &[("universe.txt", b"u2"), ("meta.txt", b"m2")],
            &dir,
        )
        .unwrap();
        assert_eq!(read_sidecar(&OsVfs, &dir, "universe.txt").unwrap(), b"u2");
        assert_eq!(read_sidecar(&OsVfs, &dir, "meta.txt").unwrap(), b"m2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_in_values_is_caught_on_load() {
        let vfs = FaultVfs::new(7);
        let dir = std::path::Path::new("/store");
        let r = build(20, 8);
        save_with(&vfs, &r, &[], dir).unwrap();
        assert!(load_with(&vfs, dir, Verify::Checksums).is_ok());
        // Flip one byte deep inside a partition file's payload region.
        let part = dir.join(part_file_name(
            read_manifest(&vfs, dir).unwrap().generation,
            0,
        ));
        let len = vfs.durable_len(&part).unwrap();
        vfs.corrupt_at(&part, len - 9);
        let Err(err) = load_with(&vfs, dir, Verify::Checksums) else {
            panic!("flipped byte loaded cleanly")
        };
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
    }

    #[test]
    fn save_through_faultvfs_survives_reboot() {
        let vfs = FaultVfs::new(11);
        let dir = std::path::Path::new("/store");
        let r = build(30, 8);
        save_with(&vfs, &r, &[("s.txt", b"payload")], dir).unwrap();
        vfs.reboot(); // everything was fsynced or renamed: nothing may be lost
        let back = load_with(&vfs, dir, Verify::Checksums).unwrap();
        assert_eq!(back.record_count(), r.record_count());
        assert_eq!(back.edge_count(), r.edge_count());
        assert_eq!(read_sidecar(&vfs, dir, "s.txt").unwrap(), b"payload");
    }

    /// A relation saved with the explicit legacy format loads through the
    /// same reader as a v3 save, answer-identically, and the manifest
    /// records which format was written.
    #[test]
    fn explicit_v2_save_round_trips_and_manifest_records_version() {
        let dir = tmpdir("v2-format");
        let r = build(50, 16);
        save_with_keep_format(&OsVfs, &r, &[], &dir, &[], FormatVersion::V2).unwrap();
        assert_eq!(
            read_manifest(&OsVfs, &dir).unwrap().version,
            FORMAT_VERSION_V2
        );
        let v2 = load(&dir).unwrap();
        let v2_bytes = disk_size(&dir).unwrap();

        save(&r, &dir).unwrap(); // default writer: v3
        assert_eq!(
            read_manifest(&OsVfs, &dir).unwrap().version,
            FORMAT_VERSION_V3
        );
        let v3 = load(&dir).unwrap();
        let v3_bytes = disk_size(&dir).unwrap();
        assert!(
            v3_bytes <= v2_bytes,
            "v3 ({v3_bytes}B) must not exceed v2 ({v2_bytes}B)"
        );

        let mut s = IoStats::new();
        for e in 0..50u32 {
            assert_eq!(
                v2.edge_measures(EdgeId(e), &mut s),
                v3.edge_measures(EdgeId(e), &mut s),
                "edge {e} differs between formats"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Mixed generations on disk: a v2 generation pinned (kept) while a v3
    /// save publishes. Both must load by their self-describing file magic.
    #[test]
    fn pinned_v2_generation_coexists_with_live_v3() {
        let vfs = FaultVfs::new(3);
        let dir = std::path::Path::new("/store");
        let r = build(20, 8);
        save_with_keep_format(&vfs, &r, &[], dir, &[], FormatVersion::V2).unwrap();
        let g2 = live_generation(&vfs, dir).unwrap();
        save_with_keep_format(&vfs, &r, &[], dir, &[g2], FormatVersion::V3).unwrap();
        let g3 = live_generation(&vfs, dir).unwrap();
        assert_ne!(g2, g3);
        // The pinned v2 part files survived GC alongside the live v3 ones.
        let names: Vec<String> = vfs
            .list(dir)
            .unwrap()
            .iter()
            .map(|f| f.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&part_file_name(g2, 0)));
        assert!(names.contains(&part_file_name(g3, 0)));
        let back = load_with(&vfs, dir, Verify::Checksums).unwrap();
        assert_eq!(back.record_count(), r.record_count());
    }

    #[test]
    fn parse_generation_accepts_only_wellformed_names() {
        assert_eq!(parse_generation("g000000000042-part_0001.gbi"), Some(42));
        assert_eq!(parse_generation("g000000000001-views.gbi"), Some(1));
        assert_eq!(parse_generation("manifest.gbi"), None);
        assert_eq!(parse_generation("g123-part_0001.gbi"), None);
        assert_eq!(parse_generation("gabcdefghijkl-x"), None);
    }
}
