//! The master relation `R(recid, m1…mn, b1…bn, views…)`.

use graphbi_bitmap::{Bitmap, RecordId};
use graphbi_graph::EdgeId;

use crate::column::{ColumnBuilder, SparseColumn};
use crate::iostats::IoStats;

/// Maximum number of edge columns per vertical partition (§6.1: "the master
/// relation is automatically broken into sub-relations with up to 1 thousand
/// columns each").
pub const DEFAULT_PARTITION_WIDTH: usize = 1000;

/// Handle of a materialized graph view column (`b_v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

/// Handle of a materialized aggregate graph view (`m_p` + `b_p`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggViewId(pub u32);

/// The master relation: one sparse measure column per edge id (its presence
/// bitmap doubling as the bitmap index column), vertically partitioned, plus
/// view columns appended by the view manager.
pub struct MasterRelation {
    columns: Vec<SparseColumn>,
    partition_width: usize,
    record_count: u64,
    view_bitmaps: Vec<Bitmap>,
    agg_views: Vec<SparseColumn>,
}

impl MasterRelation {
    pub(crate) fn from_columns(
        columns: Vec<SparseColumn>,
        partition_width: usize,
        record_count: u64,
    ) -> MasterRelation {
        assert!(partition_width > 0, "partition width must be positive");
        MasterRelation {
            columns,
            partition_width,
            record_count,
            view_bitmaps: Vec::new(),
            agg_views: Vec::new(),
        }
    }

    /// Number of records loaded (record ids are `0..record_count`).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of edge columns (the universe's edge count at load time).
    pub fn edge_count(&self) -> usize {
        self.columns.len()
    }

    /// Width of each vertical partition.
    pub fn partition_width(&self) -> usize {
        self.partition_width
    }

    /// Number of vertical sub-relations.
    pub fn partition_count(&self) -> usize {
        self.columns.len().div_ceil(self.partition_width).max(1)
    }

    /// The horizontal record shards for an `shards`-way parallel scan —
    /// the record-id axis counterpart of the vertical partitioning above.
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<u32>> {
        shard_ranges(self.record_count, shards)
    }

    /// The sub-relation holding `edge`'s columns.
    pub fn partition_of(&self, edge: EdgeId) -> usize {
        edge.index() / self.partition_width
    }

    /// Fetches the bitmap index column `b_edge`.
    ///
    /// # Panics
    ///
    /// Panics when `edge` is outside the relation's universe.
    pub fn edge_bitmap(&self, edge: EdgeId, stats: &mut IoStats) -> &Bitmap {
        stats.bitmap_columns += 1;
        self.columns[edge.index()].presence()
    }

    /// Fetches the measure column `m_edge`.
    pub fn edge_measures(&self, edge: EdgeId, stats: &mut IoStats) -> &SparseColumn {
        stats.measure_columns += 1;
        &self.columns[edge.index()]
    }

    /// Read-only access without cost accounting (loaders, view builders).
    pub fn edge_column_uncounted(&self, edge: EdgeId) -> &SparseColumn {
        &self.columns[edge.index()]
    }

    /// Materializes a graph view bitmap, returning its handle.
    pub fn add_view_bitmap(&mut self, bitmap: Bitmap) -> ViewId {
        let id = ViewId(u32::try_from(self.view_bitmaps.len()).expect("view count fits u32"));
        self.view_bitmaps.push(bitmap);
        id
    }

    /// Fetches a graph-view bitmap column.
    pub fn view_bitmap(&self, view: ViewId, stats: &mut IoStats) -> &Bitmap {
        stats.view_bitmap_columns += 1;
        &self.view_bitmaps[view.0 as usize]
    }

    /// Read-only view-bitmap access without cost accounting. The planner
    /// ranks candidate views by cardinality before deciding which to fetch;
    /// that peek must not perturb the paper's fetch-count cost model.
    pub fn view_bitmap_uncounted(&self, view: ViewId) -> &Bitmap {
        &self.view_bitmaps[view.0 as usize]
    }

    /// Number of materialized graph views.
    pub fn view_count(&self) -> usize {
        self.view_bitmaps.len()
    }

    /// Materializes an aggregate graph view: the sparse column's values are
    /// the pre-computed path aggregates `m_p`, its presence bitmap the view
    /// bitmap `b_p`.
    pub fn add_agg_view(&mut self, column: SparseColumn) -> AggViewId {
        let id = AggViewId(u32::try_from(self.agg_views.len()).expect("agg view count fits u32"));
        self.agg_views.push(column);
        id
    }

    /// Fetches an aggregate-view column (counted once: `m_p` and `b_p` are
    /// stored together).
    pub fn agg_view(&self, view: AggViewId, stats: &mut IoStats) -> &SparseColumn {
        stats.agg_view_columns += 1;
        &self.agg_views[view.0 as usize]
    }

    /// Number of materialized aggregate graph views.
    pub fn agg_view_count(&self) -> usize {
        self.agg_views.len()
    }

    /// Records partition-touch accounting for a set of edges used by one
    /// query; the engine calls this once per query evaluation.
    pub fn note_partitions(&self, edges: &[EdgeId], stats: &mut IoStats) {
        let mut seen = vec![false; self.partition_count()];
        for &e in edges {
            seen[self.partition_of(e)] = true;
        }
        stats.partitions_touched += seen.iter().filter(|&&s| s).count() as u64;
    }

    /// Heap bytes of the base columns (measures + bitmaps).
    pub fn base_size_in_bytes(&self) -> usize {
        self.columns.iter().map(SparseColumn::size_in_bytes).sum()
    }

    /// Heap bytes of all view columns.
    pub fn view_size_in_bytes(&self) -> usize {
        self.view_bitmaps
            .iter()
            .map(Bitmap::size_in_bytes)
            .sum::<usize>()
            + self
                .agg_views
                .iter()
                .map(SparseColumn::size_in_bytes)
                .sum::<usize>()
    }

    /// Total heap bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.base_size_in_bytes() + self.view_size_in_bytes()
    }

    /// Total number of non-NULL measures stored (Table 2's "total number of
    /// measures").
    pub fn total_measures(&self) -> u64 {
        self.columns.iter().map(|c| c.non_null_count() as u64).sum()
    }

    pub(crate) fn columns(&self) -> &[SparseColumn] {
        &self.columns
    }

    pub(crate) fn views_parts(&self) -> (&[Bitmap], &[SparseColumn]) {
        (&self.view_bitmaps, &self.agg_views)
    }

    pub(crate) fn restore_views(&mut self, bitmaps: Vec<Bitmap>, aggs: Vec<SparseColumn>) {
        self.view_bitmaps = bitmaps;
        self.agg_views = aggs;
    }

    /// Drops every materialized view column (budget sweeps re-materialize
    /// from scratch between runs).
    pub fn clear_views(&mut self) {
        self.view_bitmaps.clear();
        self.agg_views.clear();
    }

    /// Appends one record to the *base* columns, growing the schema when a
    /// new edge id exceeds the current column count (§6.1). Returns the new
    /// record's id. View columns are NOT maintained here — the store layer
    /// owns the view definitions and updates them after this call.
    ///
    /// # Panics
    ///
    /// Panics when an edge repeats within the record.
    pub fn append_record(&mut self, edges: &[(EdgeId, f64)]) -> RecordId {
        let rid = u32::try_from(self.record_count).expect("record id fits u32");
        if let Some(max_edge) = edges.iter().map(|&(e, _)| e.index()).max() {
            while self.columns.len() <= max_edge {
                self.columns.push(SparseColumn::new());
            }
        }
        for &(e, m) in edges {
            self.columns[e.index()].append(rid, m);
        }
        self.record_count += 1;
        rid
    }

    /// Mutable access to a graph-view bitmap — the store's incremental view
    /// maintenance hook.
    pub fn view_bitmap_mut(&mut self, view: ViewId) -> &mut Bitmap {
        &mut self.view_bitmaps[view.0 as usize]
    }

    /// Mutable access to an aggregate-view column — the store's incremental
    /// view maintenance hook.
    pub fn agg_view_mut(&mut self, view: AggViewId) -> &mut SparseColumn {
        &mut self.agg_views[view.0 as usize]
    }

    /// Re-optimizes every column's presence bitmap (after incremental
    /// appends).
    pub fn optimize_columns(&mut self) {
        for c in &mut self.columns {
            c.optimize();
        }
        for b in &mut self.view_bitmaps {
            b.optimize();
        }
        for c in &mut self.agg_views {
            c.optimize();
        }
    }
}

/// Streams records into the master relation.
///
/// Records are assigned ascending ids in arrival order, matching the
/// continuous-ingest setting of the paper's applications.
pub struct RelationBuilder {
    builders: Vec<ColumnBuilder>,
    next_record: RecordId,
}

impl RelationBuilder {
    /// Creates a builder for a universe of `edge_count` edges.
    pub fn new(edge_count: usize) -> RelationBuilder {
        RelationBuilder {
            builders: (0..edge_count).map(|_| ColumnBuilder::new()).collect(),
            next_record: 0,
        }
    }

    /// Appends one record (edge ids must be unique within the record) and
    /// returns its assigned id.
    ///
    /// # Panics
    ///
    /// Panics when an edge id is outside the declared universe or repeats
    /// within the record.
    pub fn add_record(&mut self, edges: &[(EdgeId, f64)]) -> RecordId {
        let rid = self.next_record;
        self.next_record += 1;
        for &(e, m) in edges {
            self.builders[e.index()].push(rid, m);
        }
        rid
    }

    /// Number of records added so far.
    pub fn record_count(&self) -> u64 {
        u64::from(self.next_record)
    }

    /// Finishes the relation with the given vertical partition width.
    pub fn finish_with_width(self, partition_width: usize) -> MasterRelation {
        let columns: Vec<SparseColumn> = self
            .builders
            .into_iter()
            .map(|b| {
                let mut c = b.finish();
                // Bulk loads produce runs of record ids; pick the best form.
                c.optimize();
                c
            })
            .collect();
        MasterRelation::from_columns(columns, partition_width, u64::from(self.next_record))
    }

    /// Finishes with the paper's default 1000-column partitions.
    pub fn finish(self) -> MasterRelation {
        self.finish_with_width(DEFAULT_PARTITION_WIDTH)
    }
}

/// Splits `0..record_count` into at most `shards` contiguous, near-equal
/// ranges covering every record id exactly once. `shards == 0` is treated
/// as one shard. Returns fewer ranges when there are fewer records than
/// shards, so no range is ever empty (except the single `0..0` of an empty
/// relation).
pub fn shard_ranges(record_count: u64, shards: usize) -> Vec<std::ops::Range<u32>> {
    let shards = (shards.max(1) as u64).min(record_count.max(1));
    let base = record_count / shards;
    let extra = record_count % shards;
    let mut out = Vec::with_capacity(usize::try_from(shards).expect("shard count fits usize"));
    let mut start = 0u64;
    for s in 0..shards {
        let len = base + u64::from(s < extra);
        let end = start + len;
        out.push(start as u32..u32::try_from(end).expect("record id fits u32"));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn sample_relation() -> MasterRelation {
        // Mirrors Table 1: three records over seven edges.
        let mut b = RelationBuilder::new(7);
        b.add_record(&[
            (e(0), 3.0),
            (e(1), 4.0),
            (e(2), 2.0),
            (e(3), 1.0),
            (e(4), 2.0),
        ]);
        b.add_record(&[
            (e(1), 1.0),
            (e(2), 2.0),
            (e(3), 2.0),
            (e(4), 1.0),
            (e(5), 4.0),
            (e(6), 1.0),
        ]);
        b.add_record(&[(e(3), 5.0), (e(4), 4.0), (e(5), 3.0), (e(6), 1.0)]);
        b.finish_with_width(4)
    }

    #[test]
    fn table1_layout_round_trips() {
        let mut stats = IoStats::new();
        let r = sample_relation();
        assert_eq!(r.record_count(), 3);
        assert_eq!(r.edge_count(), 7);
        assert_eq!(r.total_measures(), 15);
        // b2 (edge id 1) marks records r1, r2.
        assert_eq!(r.edge_bitmap(e(1), &mut stats).to_vec(), vec![0, 1]);
        // m6 of r3 is 3.0, NULL for r1.
        let m5 = r.edge_measures(e(5), &mut stats);
        assert_eq!(m5.get(2), Some(3.0));
        assert_eq!(m5.get(0), None);
        assert_eq!(stats.bitmap_columns, 1);
        assert_eq!(stats.measure_columns, 1);
    }

    #[test]
    fn partitioning_maps_edges_to_subrelations() {
        let r = sample_relation(); // width 4 → partitions {e0..e3}, {e4..e6}
        assert_eq!(r.partition_count(), 2);
        assert_eq!(r.partition_of(e(3)), 0);
        assert_eq!(r.partition_of(e(4)), 1);
        let mut stats = IoStats::new();
        r.note_partitions(&[e(0), e(1)], &mut stats);
        assert_eq!(stats.partitions_touched, 1);
        r.note_partitions(&[e(0), e(6)], &mut stats);
        assert_eq!(stats.partitions_touched, 3);
    }

    #[test]
    fn views_are_stored_and_counted() {
        let mut r = sample_relation();
        let mut stats = IoStats::new();
        let v = r.add_view_bitmap([0u32, 1].into_iter().collect());
        assert_eq!(r.view_bitmap(v, &mut stats).len(), 2);
        assert_eq!(stats.view_bitmap_columns, 1);
        // Aggregate view for p1=[e6,e7] with SUM: records r2, r3 (Table 1).
        let mut cb = ColumnBuilder::new();
        cb.push(1, 5.0);
        cb.push(2, 4.0);
        let av = r.add_agg_view(cb.finish());
        let col = r.agg_view(av, &mut stats);
        assert_eq!(col.get(1), Some(5.0));
        assert_eq!(col.get(0), None);
        assert_eq!(stats.agg_view_columns, 1);
        assert!(r.view_size_in_bytes() > 0);
    }

    #[test]
    fn shard_ranges_partition_the_record_space() {
        for (count, shards) in [
            (10u64, 3usize),
            (7, 7),
            (5, 8),
            (1, 4),
            (1000, 1),
            (0, 3),
            // Degenerate shard counts: 0 means serial, with or without
            // records.
            (0, 0),
            (10, 0),
            // More shards than records collapses to one per record.
            (2, usize::MAX),
            // The id-space ceiling: ranges end exactly at u32::MAX.
            (u32::MAX as u64, 3),
            (u32::MAX as u64, 1),
        ] {
            let ranges = shard_ranges(count, shards);
            assert!(ranges.len() <= shards.max(1));
            let mut next = 0u64;
            for r in &ranges {
                assert_eq!(u64::from(r.start), next, "contiguous coverage");
                assert!(u64::from(r.end) >= u64::from(r.start));
                next = u64::from(r.end);
            }
            assert_eq!(next, count, "ranges cover 0..record_count");
            if count > 0 {
                assert!(ranges.iter().all(|r| r.start < r.end), "no empty shard");
                let max_len = ranges.iter().map(|r| r.end - r.start).max().unwrap();
                let min_len = ranges.iter().map(|r| r.end - r.start).min().unwrap();
                assert!(max_len - min_len <= 1, "near-equal split");
            }
        }
    }

    #[test]
    fn relation_shard_ranges_use_record_count() {
        let r = sample_relation();
        assert_eq!(r.shard_ranges(2), vec![0..2, 2..3]);
        assert_eq!(r.shard_ranges(0), vec![0..3]);
    }

    #[test]
    fn empty_relation_is_valid() {
        let r = RelationBuilder::new(0).finish();
        assert_eq!(r.record_count(), 0);
        assert_eq!(r.edge_count(), 0);
        assert_eq!(r.partition_count(), 1);
        assert_eq!(r.total_measures(), 0);
    }

    #[test]
    fn size_independent_of_universe_density() {
        // Same data, universes of 100 vs 1000 edges: base size dominated by
        // actual measures, not by the number of declared columns.
        let mut small = RelationBuilder::new(100);
        let mut large = RelationBuilder::new(1000);
        for rid in 0..50u32 {
            let edges: Vec<(EdgeId, f64)> = (0..10).map(|i| (e((rid + i) % 100), 1.0)).collect();
            let mut sorted = edges.clone();
            sorted.sort_by_key(|&(ed, _)| ed);
            sorted.dedup_by_key(|&mut (ed, _)| ed);
            small.add_record(&sorted);
            large.add_record(&sorted);
        }
        let (s, l) = (small.finish(), large.finish());
        assert_eq!(s.total_measures(), l.total_measures());
        assert!(l.base_size_in_bytes() <= s.base_size_in_bytes() + 1000 * 64);
    }
}
