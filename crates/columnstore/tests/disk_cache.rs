//! Cache-eviction coverage for the disk-resident column store: the LRU
//! against a reference model, and the `disk_reads`/`disk_bytes` counters
//! under repeated fetches with a cache smaller than the working set.

use std::path::{Path, PathBuf};

use graphbi_columnstore::{persist, DiskRelation, IoStats, LruCache, RelationBuilder};
use graphbi_graph::EdgeId;
use proptest::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("graphbi-diskcache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_and_save(dir: &Path, records: u32, edges: u32) {
    let mut b = RelationBuilder::new(edges as usize);
    for r in 0..records {
        let row: Vec<(EdgeId, f64)> = (0..edges)
            .filter(|e| (r + e) % 2 == 0)
            .map(|e| (EdgeId(e), f64::from(r * 10 + e)))
            .collect();
        b.add_record(&row);
    }
    let rel = b.finish_with_width(4);
    persist::save(&rel, dir).unwrap();
}

/// A cache smaller than the working set thrashes: a second pass over the
/// same columns reads from disk again, and `disk_bytes` grows by exactly
/// the same amount as the first (cold) pass.
#[test]
fn undersized_cache_rereads_evicted_columns() {
    let dir = tmpdir("thrash");
    build_and_save(&dir, 600, 12);

    // Size the cache to hold roughly one decoded column, so a round-robin
    // scan over 12 columns evicts every entry before its reuse.
    let mut probe_stats = IoStats::new();
    let probe = DiskRelation::open(&dir, usize::MAX).unwrap();
    let one = probe.edge_measures(EdgeId(0), &mut probe_stats).unwrap();
    let cache_bytes = one.size_in_bytes() + one.size_in_bytes() / 2;

    let disk = DiskRelation::open(&dir, cache_bytes).unwrap();
    let mut s = IoStats::new();
    for e in 0..12u32 {
        let _ = disk.edge_measures(EdgeId(e), &mut s).unwrap();
    }
    let (cold_reads, cold_bytes) = (s.disk_reads, s.disk_bytes);
    assert_eq!(cold_reads, 12, "first pass is fully cold");
    assert!(cold_bytes > 0);

    for e in 0..12u32 {
        let _ = disk.edge_measures(EdgeId(e), &mut s).unwrap();
    }
    assert_eq!(
        s.disk_reads,
        cold_reads * 2,
        "every column was evicted before its second use"
    );
    assert_eq!(s.disk_bytes, cold_bytes * 2, "rereads move the same bytes");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With a cache larger than the working set, only the first pass touches
/// the disk; warm passes add no reads and no bytes.
#[test]
fn warm_cache_adds_no_reads_or_bytes() {
    let dir = tmpdir("warm");
    build_and_save(&dir, 600, 12);
    let disk = DiskRelation::open(&dir, 64 << 20).unwrap();
    let mut s = IoStats::new();
    for e in 0..12u32 {
        let _ = disk.edge_measures(EdgeId(e), &mut s).unwrap();
    }
    let (cold_reads, cold_bytes) = (s.disk_reads, s.disk_bytes);
    for _ in 0..3 {
        for e in 0..12u32 {
            let _ = disk.edge_measures(EdgeId(e), &mut s).unwrap();
        }
    }
    assert_eq!(s.disk_reads, cold_reads, "warm passes never read");
    assert_eq!(s.disk_bytes, cold_bytes, "warm passes move no bytes");
    assert_eq!(s.measure_columns, 4 * 12, "model cost counts every fetch");
    let (hits, misses) = disk.cache_stats();
    assert_eq!((hits, misses), (3 * 12, 12));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reference model: exact LRU over (key, size) pairs with the documented
/// semantics (get refreshes recency; insert evicts least-recent until the
/// new entry fits; oversized values bypass).
struct ModelLru {
    // Most-recent last.
    entries: Vec<(u32, u32, usize)>,
    capacity: usize,
}

impl ModelLru {
    fn used(&self) -> usize {
        self.entries.iter().map(|e| e.2).sum()
    }

    fn get(&mut self, key: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|e| e.0 == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.push(entry);
        Some(value)
    }

    fn insert(&mut self, key: u32, value: u32, size: usize) {
        if size > self.capacity {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|e| e.0 == key) {
            self.entries.remove(pos);
        }
        while self.used() + size > self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, value, size));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The byte-budgeted LRU agrees with the reference model on every
    /// lookup, and never exceeds its capacity.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..120,
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..1000, 1usize..60), 1..80),
    ) {
        let mut real: LruCache<u32, u32> = LruCache::new(capacity);
        let mut model = ModelLru { entries: Vec::new(), capacity };
        for (is_insert, key, value, size) in ops {
            if is_insert {
                let handle = real.insert(key, value, size);
                prop_assert_eq!(*handle, value, "insert always returns the value");
                model.insert(key, value, size);
            } else {
                let got = real.get(&key).map(|v| *v);
                prop_assert_eq!(got, model.get(key), "lookup of key {}", key);
            }
            prop_assert!(real.used_bytes() <= capacity);
            prop_assert_eq!(real.used_bytes(), model.used());
            prop_assert_eq!(real.len(), model.entries.len());
        }
    }
}
