//! Codec property tests (format v3): encode→decode round-trip identity
//! for every codec over adversarial inputs, and cross-codec agreement —
//! every answer computed through a compressed path must be bit-identical
//! to the raw path. No tolerance anywhere: compression is a storage
//! transform, not an approximation.

use graphbi_bitmap::intcodec::EliasFano;
use graphbi_bitmap::Bitmap;
use graphbi_columnstore::codec::gallop_intersect;
use graphbi_columnstore::{ColumnBuilder, SparseColumn};

/// Deterministic xorshift64* — fixed-seed adversarial inputs, no flaky
/// randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The adversarial bitmap corpus: container-form edges, chunk boundaries,
/// the u32 ceiling, dense runs, and seeded mixtures.
fn bitmap_corpus() -> Vec<(&'static str, Bitmap)> {
    let mut corpus: Vec<(&'static str, Vec<u32>)> = vec![
        ("empty", vec![]),
        ("single-zero", vec![0]),
        ("single-chunk-max", vec![65_535]),
        ("single-chunk-next", vec![65_536]),
        ("single-u32-max", vec![u32::MAX]),
        ("pair-extremes", vec![0, u32::MAX]),
        ("chunk-edge-straddle", vec![65_534, 65_535, 65_536, 65_537]),
        (
            "multi-chunk-multiples",
            (1..6u32).map(|k| k * 65_536).collect(),
        ),
        (
            "multi-chunk-multiples-minus-one",
            (1..6u32).map(|k| k * 65_536 - 1).collect(),
        ),
        ("dense-run", (0..10_000u32).collect()),
        ("full-chunk", (0..65_536u32).collect()),
        (
            "run-of-runs",
            (0..5_000u32).filter(|v| v % 100 < 60).collect(),
        ),
        ("arithmetic-sparse", (0..4_000u32).map(|i| i * 97).collect()),
        ("array-max", (0..4_096u32).map(|i| i * 3).collect()),
        ("array-max-plus-one", (0..4_097u32).map(|i| i * 3).collect()),
        (
            "tail-of-universe",
            (0..1_000u32).map(|i| u32::MAX - i * 7).rev().collect(),
        ),
    ];
    let mut rng = Rng(0x5eed_c0de);
    let mut mixed = Vec::new();
    for _ in 0..3_000 {
        // Clustered around chunk boundaries and spread across chunks.
        let base = rng.below(8) * 65_536;
        mixed.push((base + rng.below(200)).min(u64::from(u32::MAX)) as u32);
        mixed.push(rng.below(1 << 20) as u32);
    }
    mixed.sort_unstable();
    mixed.dedup();
    corpus.push(("seeded-mixture", mixed.leak().to_vec()));

    corpus
        .into_iter()
        .map(|(name, vals)| {
            let mut b = Bitmap::new();
            for v in vals {
                b.insert(v);
            }
            b.optimize();
            (name, b)
        })
        .collect()
}

/// Round-trip identity: for every corpus bitmap, both the raw (v2) and the
/// compressed (v3) encodings decode back to an equal bitmap, and the v3
/// encoding never exceeds the raw one (the per-container codec choice
/// includes raw as a candidate).
#[test]
fn bitmap_v3_round_trips_and_never_grows() {
    for (name, b) in bitmap_corpus() {
        let raw = b.encode();
        let mut buf = raw.clone();
        assert_eq!(Bitmap::decode(&mut buf).unwrap(), b, "{name}: v2 trip");

        let v3 = b.encode_v3();
        let mut buf = v3.clone();
        assert_eq!(Bitmap::decode(&mut buf).unwrap(), b, "{name}: v3 trip");
        assert!(
            v3.len() <= raw.len(),
            "{name}: v3 ({}) larger than raw ({})",
            v3.len(),
            raw.len()
        );
    }
}

/// Cross-codec agreement: every query primitive answered through a bitmap
/// that went through the v3 codec is bit-identical to the original —
/// cardinality, membership, rank/select, iteration order, and the boolean
/// algebra the kernels run on.
#[test]
fn bitmap_answers_are_identical_through_v3() {
    let corpus = bitmap_corpus();
    for (name, b) in &corpus {
        let mut buf = b.encode_v3();
        let back = Bitmap::decode(&mut buf).unwrap();
        assert_eq!(back.len(), b.len(), "{name}: len");
        assert_eq!(back.to_vec(), b.to_vec(), "{name}: iteration");
        assert_eq!(back.min(), b.min(), "{name}: min");
        assert_eq!(back.max(), b.max(), "{name}: max");
        let mut rng = Rng(0xbeef ^ b.len());
        for _ in 0..64 {
            let probe = rng.next() as u32;
            assert_eq!(back.contains(probe), b.contains(probe), "{name}: contains");
            assert_eq!(back.rank(probe), b.rank(probe), "{name}: rank");
        }
        for i in [0, 1, b.len().saturating_sub(1), b.len()] {
            assert_eq!(back.select(i), b.select(i), "{name}: select({i})");
        }
    }
    // Pairwise algebra through the compressed trip.
    for (na, a) in corpus.iter().take(8) {
        for (nb, b) in corpus.iter().take(8) {
            let (mut ea, mut eb) = (a.encode_v3(), b.encode_v3());
            let (da, db) = (
                Bitmap::decode(&mut ea).unwrap(),
                Bitmap::decode(&mut eb).unwrap(),
            );
            assert_eq!(da.and(&db), a.and(b), "{na} & {nb}");
            assert_eq!(da.or(&db), a.or(b), "{na} | {nb}");
            assert_eq!(da.and_not(&db), a.and_not(b), "{na} andnot {nb}");
            assert_eq!(da.and_len(&db), a.and_len(b), "{na} and_len {nb}");
        }
    }
}

/// The fused kernel: galloping intersection directly over two Elias-Fano
/// sequences (no materialization) agrees exactly with the sorted-vector
/// intersection computed in plain code.
#[test]
fn elias_fano_gallop_matches_plain_intersection() {
    let mut rng = Rng(0x009a_110b);
    let mut cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
        (vec![], vec![]),
        (vec![5], vec![5]),
        (vec![5], vec![6]),
        ((0..1000).collect(), (500..1500).collect()),
        (
            (0..1000).map(|i| i * 3).collect(),
            (0..1000).map(|i| i * 7).collect(),
        ),
        (vec![0, u64::from(u32::MAX)], vec![u64::from(u32::MAX)]),
    ];
    for _ in 0..20 {
        let gen = |rng: &mut Rng| {
            let mut v: Vec<u64> = (0..rng.below(800)).map(|_| rng.below(10_000)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        cases.push((a, b));
    }
    for (a, b) in cases {
        let ea = EliasFano::encode(&a);
        let eb = EliasFano::encode(&b);
        let got = gallop_intersect(&ea, &eb);
        let want: Vec<u64> = a.iter().copied().filter(|v| b.contains(v)).collect();
        assert_eq!(got, want, "a={a:?} b={b:?}");
        // And the sequences themselves round-trip through their bytes.
        let bytes = ea.to_bytes();
        assert_eq!(EliasFano::from_bytes(&bytes).unwrap().to_vec(), a);
    }
}

/// The adversarial measure corpus: codec-choice edges (low vs high
/// cardinality), IEEE754 specials that must survive bit-exactly, and
/// presence shapes from empty to dense.
fn column_corpus() -> Vec<(&'static str, SparseColumn)> {
    let mut out = Vec::new();
    let col = |pairs: Vec<(u32, f64)>| {
        let mut cb = ColumnBuilder::new();
        for (r, v) in pairs {
            cb.push(r, v);
        }
        cb.finish()
    };
    out.push(("empty", col(vec![])));
    out.push(("single", col(vec![(7, 1.25)])));
    out.push((
        "specials",
        col(vec![
            (0, f64::NAN),
            (1, -0.0),
            (2, 0.0),
            (3, f64::INFINITY),
            (4, f64::NEG_INFINITY),
            (5, f64::MIN_POSITIVE),
            (u32::MAX, f64::MAX),
        ]),
    ));
    out.push((
        "low-cardinality",
        col((0..20_000u32).map(|i| (i, f64::from(i % 7))).collect()),
    ));
    out.push((
        "two-values-dense",
        col((0..65_536u32)
            .map(|i| (i, if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect()),
    ));
    out.push((
        "high-cardinality",
        col((0..5_000u32)
            .map(|i| (i * 3, f64::from(i) * 0.001 + 1.0))
            .collect()),
    ));
    let mut rng = Rng(0x4a5f);
    out.push((
        "seeded-quantized",
        col((0..10_000u32)
            .map(|i| (i * 2, (rng.below(50) as f64) * 0.5))
            .collect()),
    ));
    out
}

/// Round-trip identity for the measure codec, with every float compared by
/// bit pattern — NaN payloads and the sign of zero included.
#[test]
fn measures_v3_round_trip_bit_exactly() {
    for (name, c) in column_corpus() {
        let mut buf = c.encode_v3();
        let back = SparseColumn::decode_v3(&mut buf).unwrap();
        assert_eq!(back.presence(), c.presence(), "{name}: presence");
        assert_eq!(back.non_null_count(), c.non_null_count(), "{name}: count");
        let (want, got): (Vec<_>, Vec<_>) = (c.iter().collect(), back.iter().collect());
        for ((wr, wv), (gr, gv)) in want.iter().zip(&got) {
            assert_eq!(wr, gr, "{name}: record ids");
            assert_eq!(wv.to_bits(), gv.to_bits(), "{name}: value bits at {wr}");
        }
        assert_eq!(want.len(), got.len(), "{name}: value count");
    }
}

/// Cross-codec agreement on the query surface: `get`, `gather`, and the
/// streaming `fold_over` (which on dictionary-coded columns reads packed
/// indices directly, never materializing a raw vector) answer bit-
/// identically before and after the compressed trip.
#[test]
fn measure_queries_are_identical_through_v3() {
    for (name, c) in column_corpus() {
        let mut buf = c.encode_v3();
        let back = SparseColumn::decode_v3(&mut buf).unwrap();
        let mut rng = Rng(0xfee1 ^ c.non_null_count() as u64);
        for _ in 0..64 {
            let probe = rng.next() as u32;
            assert_eq!(
                back.get(probe).map(f64::to_bits),
                c.get(probe).map(f64::to_bits),
                "{name}: get({probe})"
            );
        }
        let ids = c.presence().clone();
        let (want, got) = (c.gather(&ids), back.gather(&ids));
        assert_eq!(want.len(), got.len(), "{name}: gather len");
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits(), "{name}: gather bits");
        }
        let mut folded_raw = Vec::new();
        let mut folded_v3 = Vec::new();
        c.fold_over(&ids, |v| folded_raw.push(v.to_bits()));
        back.fold_over(&ids, |v| folded_v3.push(v.to_bits()));
        assert_eq!(folded_raw, folded_v3, "{name}: fold_over stream");
    }
}

/// Truncation sweep over whole-column v3 encodings: cutting the buffer at
/// any point must yield a typed error, never a panic or a wrong column.
#[test]
fn column_v3_rejects_every_truncation() {
    for (name, c) in column_corpus().into_iter().take(5) {
        let full = c.encode_v3();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            if let Ok(back) = SparseColumn::decode_v3(&mut buf) {
                // A prefix that still parses must be the intact column
                // (possible only when trailing bytes were going unread).
                assert_eq!(back, c, "{name}: truncation at {cut} parsed differently");
            }
        }
    }
}
