//! Robustness: column and relation decoding must never panic on corrupt
//! bytes.

use graphbi_columnstore::{ColumnBuilder, SparseColumn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn column_decode_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let mut buf = bytes::Bytes::from(bytes);
        if let Ok(col) = SparseColumn::decode(&mut buf) {
            prop_assert_eq!(col.presence().len(), col.non_null_count() as u64);
        }
    }

    #[test]
    fn column_round_trip_then_bitflip(
        entries in prop::collection::btree_map(0u32..100_000, -1e6f64..1e6, 1..200),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let mut b = ColumnBuilder::new();
        for (&r, &v) in &entries {
            b.push(r, v);
        }
        let col = b.finish();
        let encoded = col.encode();
        // Round trip is exact.
        let back = SparseColumn::decode(&mut encoded.clone()).unwrap();
        prop_assert_eq!(&back, &col);
        // A corrupted copy decodes to something or errors — never panics.
        let mut corrupt = encoded.to_vec();
        let i = flip_at.index(corrupt.len());
        corrupt[i] ^= 0x40;
        let mut buf = bytes::Bytes::from(corrupt);
        let _ = SparseColumn::decode(&mut buf);
    }
}

#[test]
fn relation_load_rejects_corrupt_directory() {
    use graphbi_columnstore::{persist, RelationBuilder};
    use graphbi_graph::EdgeId;
    let dir = std::env::temp_dir().join(format!("graphbi-fuzz-rel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut b = RelationBuilder::new(8);
    for r in 0..50u32 {
        b.add_record(&[(EdgeId(r % 8), 1.0)]);
    }
    let relation = b.finish_with_width(4);
    persist::save(&relation, &dir).unwrap();

    // Truncate a partition file: load must error, not panic. Part files
    // are generation-named (format v2), so locate it by suffix.
    let part = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("-part_0001.gbi"))
        })
        .expect("saved relation has a second partition file");
    let bytes = std::fs::read(&part).unwrap();
    std::fs::write(&part, &bytes[..bytes.len() / 2]).unwrap();
    assert!(persist::load(&dir).is_err());

    // Remove it entirely: also a clean error.
    std::fs::remove_file(&part).unwrap();
    assert!(persist::load(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
