//! Differential coverage for the kernel-accelerated aggregation paths:
//! `fold_over` / `fold_aggregate` must produce the same answer through the
//! raw fast path, the streaming dictionary path, and on both kernel
//! dispatch paths — including IEEE-754 specials carried through a v3
//! dictionary round trip.

use graphbi_bitmap::kernels::{self, FoldAgg, KernelPath};
use graphbi_bitmap::Bitmap;
use graphbi_columnstore::SparseColumn;

/// Bit equality, except any NaN equals any NaN (arithmetic NaN payload
/// bits are unspecified in Rust; see the kernels module docs).
fn bits_eq_mod_nan(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn agg_eq(a: &FoldAgg, b: &FoldAgg) -> bool {
    a.count() == b.count()
        && bits_eq_mod_nan(a.sum(), b.sum())
        && a.min().to_bits() == b.min().to_bits()
        && a.max().to_bits() == b.max().to_bits()
}

/// A column with few distinct values (so v3 dictionary-codes it) that
/// include every IEEE special worth worrying about.
fn specials_column(n: u32) -> SparseColumn {
    let pool = [
        1.5,
        -2.25,
        0.0,
        -0.0,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
    ];
    let presence: Bitmap = (0..n).map(|i| i * 3).collect();
    let values: Vec<f64> = (0..n as usize).map(|i| pool[i % pool.len()]).collect();
    SparseColumn::from_parts(presence, values)
}

/// The reference answer: the scalar kernel recurrence applied in rank
/// order, exactly as `fold_over` streams values.
fn reference_agg(col: &SparseColumn, ids: &Bitmap) -> FoldAgg {
    let mut agg = FoldAgg::new();
    for v in col.gather(ids) {
        agg.push(v);
    }
    agg
}

#[test]
fn fold_aggregate_matches_reference_on_raw_and_dict() {
    let raw = specials_column(4_000);
    let mut buf = raw.encode_v3();
    let dict = SparseColumn::decode_v3(&mut buf).unwrap();

    // Superset (fast path), exact presence, strict subset, and disjoint ids.
    let everything: Bitmap = (0..20_000u32).collect();
    let subset: Bitmap = (0..4_000u32).map(|i| i * 6).collect();
    let disjoint: Bitmap = (0..100u32).map(|i| i * 3 + 1).collect();
    for ids in [&everything, raw.presence(), &subset, &disjoint] {
        let want = reference_agg(&raw, ids);
        for col in [&raw, &dict] {
            let got = col.fold_aggregate(ids);
            assert!(
                agg_eq(&got, &want),
                "fold_aggregate diverged: {got:?} vs {want:?}"
            );
            // fold_over must stream the identical value sequence.
            let mut streamed = FoldAgg::new();
            col.fold_over(ids, |v| streamed.push(v));
            assert!(agg_eq(&streamed, &want));
        }
    }
}

#[test]
fn dict_round_trip_preserves_special_bits() {
    let raw = specials_column(1_000);
    let mut buf = raw.encode_v3();
    let dict = SparseColumn::decode_v3(&mut buf).unwrap();
    let ids = raw.presence().clone();
    let a = raw.gather(&ids);
    let b = dict.gather(&ids);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        // Dictionary interning keys on to_bits, so even NaN payloads and
        // the sign of zero survive the round trip exactly.
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn fold_kernel_paths_agree_on_gathered_values() {
    let col = specials_column(3_000);
    let ids: Bitmap = (0..2_000u32).map(|i| i * 3).collect();
    let vals = col.gather(&ids);
    let s = kernels::fold_f64_path(KernelPath::Scalar, &vals);
    let v = kernels::fold_f64_path(KernelPath::Simd, &vals);
    assert!(agg_eq(&s, &v), "kernel paths diverged: {s:?} vs {v:?}");
    assert_eq!(s.count(), ids.len());
}

#[test]
fn empty_and_tail_lengths_fold_identically() {
    for n in 0..=67u32 {
        let col = specials_column(n);
        let ids: Bitmap = (0..n).map(|i| i * 3).collect();
        let want = reference_agg(&col, &ids);
        let got = col.fold_aggregate(&ids);
        assert!(agg_eq(&got, &want), "n={n}: {got:?} vs {want:?}");
        assert_eq!(got.count(), u64::from(n));
    }
}
