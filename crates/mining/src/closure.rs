//! Closed frequent itemsets via intersection fixpoint.
//!
//! §5.2 builds the candidate graph views as: every query graph, every
//! pairwise intersection of query graphs, and iteratively the intersections
//! of those ("adding the common subgraphs of the common subgraphs identified
//! in the previous steps"). The fixpoint of that process is exactly the
//! family of *closed* itemsets — edge sets equal to the intersection of all
//! transactions containing them — and the paper's supersede filter removes
//! precisely the non-closed ones. This miner computes the family directly
//! and is therefore both the "intersection closure" candidate generator and
//! the post-processing filter in one.

use std::collections::HashMap;

use graphbi_graph::EdgeId;

use crate::{intersect_sorted, MinedSet};

/// Mines all closed itemsets with support ≥ `min_sup`.
///
/// Transactions must be sorted and deduplicated. Complexity is output
/// sensitive: each closed set is produced by intersecting an existing closed
/// set with a transaction, so the work is `O(|closed| · |T| · avg_len)`.
///
/// # Panics
///
/// Panics when `min_sup == 0`.
pub fn closed_itemsets(transactions: &[Vec<EdgeId>], min_sup: usize) -> Vec<MinedSet> {
    assert!(min_sup >= 1, "min_sup must be at least 1");
    // Every closed set is an intersection of a sub-family of transactions;
    // build the family incrementally: processing transaction t, every
    // existing closed set c spawns c ∩ t, and t itself joins the family.
    // Exact tidsets are recomputed at the end in one pass per set.
    let mut closed: std::collections::HashSet<Vec<EdgeId>> = std::collections::HashSet::new();
    for t in transactions {
        debug_assert!(
            t.windows(2).all(|w| w[0] < w[1]),
            "transactions sorted+dedup"
        );
        if t.is_empty() {
            continue;
        }
        let mut updates: Vec<Vec<EdgeId>> = vec![t.clone()];
        for edges in closed.iter() {
            let common = intersect_sorted(edges, t);
            if !common.is_empty() {
                updates.push(common);
            }
        }
        closed.extend(updates);
    }
    let mut out: Vec<MinedSet> = closed
        .into_iter()
        .map(|edges| {
            let tids: Vec<u32> = transactions
                .iter()
                .enumerate()
                .filter(|(_, t)| crate::is_subset_sorted(&edges, t))
                .map(|(tid, _)| u32::try_from(tid).expect("tid fits u32"))
                .collect();
            MinedSet { edges, tids }
        })
        .filter(|m| m.support() >= min_sup)
        .collect();
    out.sort_by(|a, b| {
        a.edges
            .len()
            .cmp(&b.edges.len())
            .then(a.edges.cmp(&b.edges))
    });
    out
}

/// The paper's supersede filter applied to an arbitrary mined family: keeps
/// only sets not superseded by another set in the family.
///
/// `Gv ≺ Gv'` iff `Gv ⊂ Gv'` and every transaction containing `Gv` contains
/// `Gv'` — with exact tidsets this is "same tidset, strictly larger set".
pub fn filter_superseded(mut sets: Vec<MinedSet>) -> Vec<MinedSet> {
    // Group by tidset; keep the maximal set(s) of each group. Within one
    // tidset group the closed set (the intersection of those transactions)
    // is the unique superset of all others, so keeping maxima keeps one.
    let mut by_tids: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, m) in sets.iter().enumerate() {
        by_tids.entry(m.tids.clone()).or_default().push(i);
    }
    let mut keep = vec![true; sets.len()];
    for idxs in by_tids.values() {
        for &i in idxs {
            for &j in idxs {
                if i != j
                    && keep[i]
                    && sets[i].edges.len() < sets[j].edges.len()
                    && crate::is_subset_sorted(&sets[i].edges, &sets[j].edges)
                {
                    keep[i] = false;
                }
            }
        }
    }
    let mut i = 0;
    sets.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::frequent_itemsets;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn tx(ids: &[&[u32]]) -> Vec<Vec<EdgeId>> {
        ids.iter()
            .map(|t| t.iter().map(|&i| e(i)).collect())
            .collect()
    }

    #[test]
    fn closed_sets_of_simple_workload() {
        // Queries: {1,2,3}, {2,3,4}, {1,2,3} — closed sets: {1,2,3} (tids
        // 0,2), {2,3,4} (tid 1), {2,3} (all three).
        let t = tx(&[&[1, 2, 3], &[2, 3, 4], &[1, 2, 3]]);
        let got = closed_itemsets(&t, 1);
        let as_pairs: Vec<(Vec<u32>, Vec<u32>)> = got
            .iter()
            .map(|m| (m.edges.iter().map(|e| e.0).collect(), m.tids.clone()))
            .collect();
        assert_eq!(
            as_pairs,
            vec![
                (vec![2, 3], vec![0, 1, 2]),
                (vec![1, 2, 3], vec![0, 2]),
                (vec![2, 3, 4], vec![1]),
            ]
        );
    }

    #[test]
    fn closed_equals_apriori_plus_supersede_filter() {
        let t = tx(&[
            &[1, 2, 3, 4],
            &[2, 3, 4, 5],
            &[1, 2, 4],
            &[3, 4, 5],
            &[1, 2, 3, 4, 5],
        ]);
        for min_sup in 1..=3 {
            let closed = closed_itemsets(&t, min_sup);
            let filtered = filter_superseded(frequent_itemsets(&t, min_sup));
            let mut a: Vec<Vec<EdgeId>> = closed.into_iter().map(|m| m.edges).collect();
            let mut b: Vec<Vec<EdgeId>> = filtered.into_iter().map(|m| m.edges).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "min_sup={min_sup}");
        }
    }

    #[test]
    fn min_sup_filters_rare_sets() {
        let t = tx(&[&[1, 2], &[1, 2], &[3]]);
        let got = closed_itemsets(&t, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edges, vec![e(1), e(2)]);
        assert_eq!(got[0].support(), 2);
    }

    #[test]
    fn every_transaction_is_a_closed_set() {
        let t = tx(&[&[1, 9], &[2, 5, 7], &[4]]);
        let got = closed_itemsets(&t, 1);
        for tr in &t {
            assert!(got.iter().any(|m| &m.edges == tr), "{tr:?} missing");
        }
    }

    #[test]
    fn identical_duplicated_transactions_do_not_blow_up() {
        // The degenerate case that kills level-wise mining: many identical
        // wide transactions. Closed mining yields exactly one set.
        let wide: Vec<u32> = (0..60).collect();
        let t = tx(&[&wide, &wide, &wide, &wide]);
        let got = closed_itemsets(&t, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].support(), 4);
        assert_eq!(got[0].edges.len(), 60);
    }

    #[test]
    fn empty_transactions_ignored() {
        let t = tx(&[&[], &[1], &[]]);
        let got = closed_itemsets(&t, 1);
        assert_eq!(got.len(), 1);
    }
}
