//! Discriminative-fragment selection (gIndex, §6.3).
//!
//! gIndex does not index every frequent fragment: a fragment earns a column
//! only when it is *discriminative* — the records containing it are notably
//! fewer than the records containing all of its already-selected
//! subfragments combined. Processing fragments in size order with ratio
//! threshold γ (gIndex's default 2.0) yields the fragment set that the
//! paper's Figures 10–11 turn into extra bitmap columns.

use std::collections::HashMap;

use graphbi_graph::EdgeId;

use crate::{is_subset_sorted, MinedSet};

/// Selection parameters.
#[derive(Clone, Copy, Debug)]
pub struct GindexConfig {
    /// Discriminative ratio γ: a fragment is kept when
    /// `|candidate records via selected subfragments| / |records of f| ≥ γ`.
    pub gamma: f64,
    /// Maximum number of fragments to select (the experiments sweep this as
    /// the "space budget").
    pub max_fragments: usize,
}

impl Default for GindexConfig {
    fn default() -> Self {
        GindexConfig {
            gamma: 2.0,
            max_fragments: usize::MAX,
        }
    }
}

/// A selected discriminative fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Sorted edge ids.
    pub edges: Vec<EdgeId>,
    /// Supporting sample-record ids.
    pub tids: Vec<u32>,
}

/// Selects discriminative fragments from `frequent` (the gspan output,
/// sorted size-ascending), over a sample of `n_records` records.
///
/// Single-edge fragments are never selected: the master relation already
/// has a bitmap column per edge, which is also why the candidate-record set
/// of a fragment with no selected subfragments is the intersection of its
/// single-edge tidsets rather than the whole sample.
pub fn select_fragments(frequent: &[MinedSet], config: &GindexConfig) -> Vec<Fragment> {
    // Tidsets of single edges, for the base candidate estimate.
    let mut single: HashMap<EdgeId, &Vec<u32>> = HashMap::new();
    for m in frequent {
        if let [e] = m.edges.as_slice() {
            single.insert(*e, &m.tids);
        }
    }

    let mut selected: Vec<Fragment> = Vec::new();
    for m in frequent {
        if selected.len() >= config.max_fragments {
            break;
        }
        if m.edges.len() < 2 {
            continue;
        }
        // gIndex's size-increasing discriminative test: compare the
        // fragment's frequency against its *best already-indexed
        // subfragment* — each single edge, and each selected smaller
        // fragment, taken individually. (Intersecting all single-edge
        // tidsets would reproduce the fragment's exact support here, since
        // a named-entity subgraph is determined by its edge set; the index
        // probes one fragment at a time, which is what the ratio models.)
        let mut candidate_count = usize::MAX;
        for &e in &m.edges {
            if let Some(tids) = single.get(&e) {
                candidate_count = candidate_count.min(tids.len());
            }
        }
        for f in &selected {
            if is_subset_sorted(&f.edges, &m.edges) {
                candidate_count = candidate_count.min(f.tids.len());
            }
        }
        if m.tids.is_empty() || candidate_count == usize::MAX {
            continue;
        }
        let ratio = candidate_count as f64 / m.tids.len() as f64;
        if ratio >= config.gamma {
            selected.push(Fragment {
                edges: m.edges.clone(),
                tids: m.tids.clone(),
            });
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn mined(edges: &[u32], tids: &[u32]) -> MinedSet {
        MinedSet {
            edges: edges.iter().map(|&i| e(i)).collect(),
            tids: tids.to_vec(),
        }
    }

    #[test]
    fn discriminative_fragment_is_selected() {
        // Edges 1 and 2 each in records 0..10; together only in {0}.
        let frequent = vec![
            mined(&[1], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            mined(&[2], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            mined(&[1, 2], &[0]),
        ];
        let got = select_fragments(&frequent, &GindexConfig::default());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edges, vec![e(1), e(2)]);
    }

    #[test]
    fn redundant_fragment_is_skipped() {
        // {1,2} adds nothing over its single edges (same tidset).
        let frequent = vec![
            mined(&[1], &[0, 1, 2]),
            mined(&[2], &[0, 1, 2]),
            mined(&[1, 2], &[0, 1, 2]),
        ];
        let got = select_fragments(&frequent, &GindexConfig::default());
        assert!(got.is_empty());
    }

    #[test]
    fn selected_subfragments_tighten_later_candidates() {
        // {1,2} is discriminative. {1,2,3} has the same tidset as {1,2}∩{3},
        // so once {1,2} is selected it stops being discriminative.
        let frequent = vec![
            mined(&[1], &[0, 1, 2, 3, 4, 5]),
            mined(&[2], &[0, 1, 2, 3, 4, 5]),
            mined(&[3], &[0, 1, 2]),
            mined(&[1, 2], &[0, 1, 2]),
            mined(&[1, 2, 3], &[0, 1, 2]),
        ];
        let got = select_fragments(
            &frequent,
            &GindexConfig {
                gamma: 1.5,
                max_fragments: 10,
            },
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edges, vec![e(1), e(2)]);
    }

    #[test]
    fn max_fragments_caps_selection() {
        let frequent = vec![
            mined(&[1], &[0, 1, 2, 3]),
            mined(&[2], &[0, 1, 2, 3]),
            mined(&[3], &[0, 1, 2, 3]),
            mined(&[1, 2], &[0]),
            mined(&[2, 3], &[1]),
        ];
        let got = select_fragments(
            &frequent,
            &GindexConfig {
                gamma: 2.0,
                max_fragments: 1,
            },
        );
        assert_eq!(got.len(), 1);
    }
}
