//! Frequent connected subgraph mining over record samples (gSpan stand-in).
//!
//! gSpan mines frequent subgraphs under isomorphism using DFS codes. In this
//! framework nodes are globally named entities, so two subgraphs are "the
//! same" exactly when their edge sets are equal and no isomorphism test is
//! needed. What remains is pattern growth: enumerate frequent *connected*
//! edge sets by repeatedly attaching adjacent edges, with a canonical-parent
//! rule replacing the DFS-code minimality check for duplicate-free
//! enumeration.

use std::collections::{HashMap, HashSet};

use graphbi_graph::{EdgeId, NodeId, Universe};

use crate::{intersect_sorted, MinedSet};

/// Limits for one mining run.
#[derive(Clone, Copy, Debug)]
pub struct GspanConfig {
    /// Minimum number of supporting sample records (for single edges).
    pub min_support: usize,
    /// Extra support demanded per additional edge — gIndex's
    /// *size-increasing support* ψ: a pattern of `k` edges must reach
    /// `min_support + support_ramp × (k − 1)`. Keeps dense samples from
    /// exploding without a hard truncation of the search space.
    pub support_ramp: usize,
    /// Maximum pattern size in edges (gIndex's `maxL`).
    pub max_edges: usize,
    /// Hard cap on emitted patterns (mining is exponential in the worst
    /// case; the paper itself resorts to a 1% sample for the same reason).
    pub max_patterns: usize,
}

impl GspanConfig {
    /// The ψ threshold for a pattern of `edges` edges.
    pub fn support_for(&self, edges: usize) -> usize {
        self.min_support + self.support_ramp * edges.saturating_sub(1)
    }
}

impl Default for GspanConfig {
    fn default() -> Self {
        GspanConfig {
            min_support: 2,
            support_ramp: 0,
            max_edges: 10,
            max_patterns: 100_000,
        }
    }
}

/// Mines frequent connected edge sets from `records` (each a sorted edge-id
/// list), resolving connectivity through `universe`.
///
/// Returns patterns of size ≥ 1 with their supporting record ids, in
/// size-then-lexicographic order.
pub fn mine(records: &[Vec<EdgeId>], universe: &Universe, config: &GspanConfig) -> Vec<MinedSet> {
    // Tidsets of frequent single edges.
    let mut single: HashMap<EdgeId, Vec<u32>> = HashMap::new();
    for (tid, r) in records.iter().enumerate() {
        for &e in r {
            single
                .entry(e)
                .or_default()
                .push(u32::try_from(tid).expect("tid fits u32"));
        }
    }
    single.retain(|_, tids| tids.len() >= config.min_support);

    // Node → frequent incident edges, for adjacency expansion.
    let mut incident: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
    for &e in single.keys() {
        let (s, t) = universe.endpoints(e);
        incident.entry(s).or_default().push(e);
        if t != s {
            incident.entry(t).or_default().push(e);
        }
    }
    for v in incident.values_mut() {
        v.sort_unstable();
        v.dedup();
    }

    let mut out: Vec<MinedSet> = Vec::new();
    let mut roots: Vec<EdgeId> = single.keys().copied().collect();
    roots.sort_unstable();
    for &root in &roots {
        if out.len() >= config.max_patterns {
            break;
        }
        let tids = single[&root].clone();
        let mut pattern = vec![root];
        grow(
            &mut pattern,
            tids,
            universe,
            &single,
            &incident,
            config,
            &mut out,
        );
    }
    out.sort_by(|a, b| {
        a.edges
            .len()
            .cmp(&b.edges.len())
            .then(a.edges.cmp(&b.edges))
    });
    out
}

/// Recursive pattern growth with the canonical-parent rule.
fn grow(
    pattern: &mut Vec<EdgeId>,
    tids: Vec<u32>,
    universe: &Universe,
    single: &HashMap<EdgeId, Vec<u32>>,
    incident: &HashMap<NodeId, Vec<EdgeId>>,
    config: &GspanConfig,
    out: &mut Vec<MinedSet>,
) {
    if out.len() >= config.max_patterns {
        return;
    }
    let mut sorted = pattern.clone();
    sorted.sort_unstable();
    out.push(MinedSet {
        edges: sorted,
        tids: tids.clone(),
    });
    if pattern.len() >= config.max_edges {
        return;
    }

    // Candidate extensions: frequent edges adjacent to the pattern.
    let mut nodes: HashSet<NodeId> = HashSet::new();
    for &e in pattern.iter() {
        let (s, t) = universe.endpoints(e);
        nodes.insert(s);
        nodes.insert(t);
    }
    let mut extensions: Vec<EdgeId> = Vec::new();
    for &n in &nodes {
        if let Some(es) = incident.get(&n) {
            extensions.extend(es.iter().copied());
        }
    }
    extensions.sort_unstable();
    extensions.dedup();

    for ext in extensions {
        if pattern.contains(&ext) {
            continue;
        }
        // Canonical-parent rule: the child pattern P∪{ext} is generated
        // only from its canonical parent — P∪{ext} minus the *largest* edge
        // whose removal keeps it connected. Generating from any other
        // parent would duplicate the child.
        let mut child: Vec<EdgeId> = pattern.clone();
        child.push(ext);
        if canonical_removal(&child, universe) != Some(ext) {
            continue;
        }
        let child_tids = intersect_sorted(&tids, &single[&ext]);
        if child_tids.len() < config.support_for(child.len()) {
            continue;
        }
        pattern.push(ext);
        grow(pattern, child_tids, universe, single, incident, config, out);
        pattern.pop();
    }
}

/// The largest edge of `edges` whose removal keeps the pattern connected
/// (`None` for single-edge patterns, which are roots).
fn canonical_removal(edges: &[EdgeId], universe: &Universe) -> Option<EdgeId> {
    if edges.len() <= 1 {
        return None;
    }
    let mut sorted = edges.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .rev()
        .copied()
        .find(|&e| is_connected_without(&sorted, e, universe))
}

/// True when `edges` minus `skip` is still one connected component
/// (treating edges as undirected, self-loops attached to their node).
fn is_connected_without(edges: &[EdgeId], skip: EdgeId, universe: &Universe) -> bool {
    let rest: Vec<EdgeId> = edges.iter().copied().filter(|&e| e != skip).collect();
    is_connected(&rest, universe)
}

/// Connectivity of an edge set (undirected sense). The empty set counts as
/// connected.
pub fn is_connected(edges: &[EdgeId], universe: &Universe) -> bool {
    if edges.len() <= 1 {
        return true;
    }
    let mut adj: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, &e) in edges.iter().enumerate() {
        let (s, t) = universe.endpoints(e);
        adj.entry(s).or_default().push(i);
        adj.entry(t).or_default().push(i);
    }
    let mut seen_edges = vec![false; edges.len()];
    let mut stack = vec![0usize];
    seen_edges[0] = true;
    let mut count = 1;
    while let Some(i) = stack.pop() {
        let (s, t) = universe.endpoints(edges[i]);
        for n in [s, t] {
            for &j in adj.get(&n).into_iter().flatten() {
                if !seen_edges[j] {
                    seen_edges[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
    }
    count == edges.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Universe: a path A→B→C→D plus a detached edge X→Y.
    fn setup() -> (Universe, Vec<EdgeId>) {
        let mut u = Universe::new();
        let edges = vec![
            u.edge_by_names("A", "B"),
            u.edge_by_names("B", "C"),
            u.edge_by_names("C", "D"),
            u.edge_by_names("X", "Y"),
        ];
        (u, edges)
    }

    #[test]
    fn connectivity() {
        let (u, e) = setup();
        assert!(is_connected(&[e[0], e[1]], &u));
        assert!(is_connected(&[e[0], e[1], e[2]], &u));
        assert!(!is_connected(&[e[0], e[2]], &u)); // A→B and C→D don't touch
        assert!(!is_connected(&[e[0], e[3]], &u));
        assert!(is_connected(&[], &u));
        assert!(is_connected(&[e[3]], &u));
    }

    #[test]
    fn mines_connected_patterns_only() {
        let (u, e) = setup();
        // Three records all containing the path and the detached edge.
        let records: Vec<Vec<EdgeId>> = (0..3).map(|_| e.clone()).collect();
        let got = mine(
            &records,
            &u,
            &GspanConfig {
                min_support: 2,
                max_edges: 4,
                max_patterns: 1000,
                ..GspanConfig::default()
            },
        );
        for m in &got {
            assert!(is_connected(&m.edges, &u), "{:?} disconnected", m.edges);
            assert_eq!(m.support(), 3);
        }
        // Connected subsets: {ab},{bc},{cd},{xy},{ab,bc},{bc,cd},{ab,bc,cd}.
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn no_duplicate_patterns() {
        let mut u = Universe::new();
        // A star: center S with 4 spokes — many growth orders per pattern.
        let edges: Vec<EdgeId> = (0..4)
            .map(|i| u.edge_by_names("S", &format!("T{i}")))
            .collect();
        let records = vec![edges.clone(), edges.clone()];
        let got = mine(&records, &u, &GspanConfig::default());
        let mut keys: Vec<Vec<EdgeId>> = got.iter().map(|m| m.edges.clone()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicates emitted");
        // All 2^4 - 1 non-empty spoke subsets are connected through S.
        assert_eq!(before, 15);
    }

    #[test]
    fn min_support_prunes() {
        let (u, e) = setup();
        let records = vec![vec![e[0], e[1]], vec![e[0]], vec![e[0]]];
        let got = mine(
            &records,
            &u,
            &GspanConfig {
                min_support: 3,
                max_edges: 3,
                max_patterns: 100,
                ..GspanConfig::default()
            },
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].edges, vec![e[0]]);
    }

    #[test]
    fn max_edges_caps_pattern_size() {
        let (u, e) = setup();
        let records = vec![e.clone(), e.clone()];
        let got = mine(
            &records,
            &u,
            &GspanConfig {
                min_support: 2,
                max_edges: 2,
                max_patterns: 100,
                ..GspanConfig::default()
            },
        );
        assert!(got.iter().all(|m| m.edges.len() <= 2));
    }
}
