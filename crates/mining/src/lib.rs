#![warn(missing_docs)]

//! Mining substrates for candidate generation (§5.2) and gIndex (§6.3).
//!
//! Three miners, all operating on collections of edge-id sets:
//!
//! * [`apriori`] — textbook level-wise frequent itemset mining (Agrawal &
//!   Srikant, VLDB'94), the method §5.2 proposes for generating candidate
//!   graph views when pairwise query intersections would explode.
//! * [`closure`] — closed frequent itemsets via intersection fixpoint. The
//!   paper's supersede filter ("a graph view is of no use if a larger view
//!   serves exactly the same queries") keeps precisely the *closed* itemsets,
//!   so this miner produces the post-processed candidate set directly.
//! * [`gspan`] — frequent *connected* subgraph mining over record samples,
//!   standing in for gSpan. Because nodes are globally named entities, a
//!   subgraph is identified by its edge set and isomorphism never arises;
//!   what remains of gSpan is pattern growth over connected edge sets with a
//!   canonical-parent rule for duplicate-free enumeration.
//! * [`gindex`] — discriminative-fragment selection over gspan's output,
//!   mirroring the gIndex size-increasing discriminative filter.

pub mod apriori;
pub mod closure;
pub mod gindex;
pub mod gspan;

use graphbi_graph::EdgeId;

/// A mined edge set with the ids of the transactions (queries or records)
/// that contain it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinedSet {
    /// Sorted edge ids of the itemset / fragment.
    pub edges: Vec<EdgeId>,
    /// Sorted ids of the supporting transactions.
    pub tids: Vec<u32>,
}

impl MinedSet {
    /// Number of supporting transactions.
    pub fn support(&self) -> usize {
        self.tids.len()
    }
}

/// Intersection of two sorted id slices.
pub(crate) fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// True when sorted `needle` is a subset of sorted `haystack`.
pub(crate) fn is_subset_sorted<T: Ord + Copy>(needle: &[T], haystack: &[T]) -> bool {
    let mut j = 0;
    for &x in needle {
        while j < haystack.len() && haystack[j] < x {
            j += 1;
        }
        if j == haystack.len() || haystack[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert!(is_subset_sorted(&[2, 4], &[1, 2, 3, 4]));
        assert!(!is_subset_sorted(&[2, 6], &[1, 2, 3, 4]));
        assert!(is_subset_sorted::<u32>(&[], &[1]));
    }
}
