//! Level-wise frequent itemset mining (a-priori).
//!
//! §5.2 maps candidate-view generation to frequent itemset counting: each
//! graph query is a transaction whose items are its edges, and a frequent
//! itemset with support ≥ `minSup` is an edge set usable by at least
//! `minSup` queries. The classic a-priori algorithm mines these level by
//! level, pruning candidates with an infrequent subset.

use std::collections::HashMap;

use graphbi_graph::EdgeId;

use crate::{is_subset_sorted, MinedSet};

/// Safety valve: level-wise mining on heavily-overlapping workloads can blow
/// up combinatorially; mining aborts by returning what it has when the
/// result would exceed this many itemsets. The closure miner
/// ([`crate::closure`]) is immune and is the default candidate generator.
pub const MAX_ITEMSETS: usize = 200_000;

/// Mines all itemsets (size ≥ 1) with support ≥ `min_sup` transactions.
///
/// Transactions must have sorted, deduplicated edge lists. Returns itemsets
/// with their supporting transaction ids, smaller itemsets first; within a
/// level, lexicographic order.
///
/// # Panics
///
/// Panics when `min_sup == 0` (a support threshold of zero is meaningless —
/// every subset of every transaction would qualify).
pub fn frequent_itemsets(transactions: &[Vec<EdgeId>], min_sup: usize) -> Vec<MinedSet> {
    assert!(min_sup >= 1, "min_sup must be at least 1");
    // L1: frequent single edges.
    let mut tidsets: HashMap<EdgeId, Vec<u32>> = HashMap::new();
    for (tid, t) in transactions.iter().enumerate() {
        debug_assert!(
            t.windows(2).all(|w| w[0] < w[1]),
            "transactions sorted+dedup"
        );
        for &e in t {
            tidsets
                .entry(e)
                .or_default()
                .push(u32::try_from(tid).expect("tid fits u32"));
        }
    }
    let mut level: Vec<MinedSet> = tidsets
        .into_iter()
        .filter(|(_, tids)| tids.len() >= min_sup)
        .map(|(e, tids)| MinedSet {
            edges: vec![e],
            tids,
        })
        .collect();
    level.sort_by(|a, b| a.edges.cmp(&b.edges));

    let mut all = level.clone();
    while !level.is_empty() && all.len() < MAX_ITEMSETS {
        let mut next: Vec<MinedSet> = Vec::new();
        // Join step: combine itemsets sharing all but the last item.
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (a, b) = (&level[i], &level[j]);
                let k = a.edges.len();
                if a.edges[..k - 1] != b.edges[..k - 1] {
                    break; // sorted order: no further joins for i
                }
                let mut edges = a.edges.clone();
                edges.push(b.edges[k - 1]);
                // Prune step: every (k)-subset must be frequent. Checking
                // the two generators covers most cases; check the rest.
                if !all_k_subsets_frequent(&edges, &level) {
                    continue;
                }
                let tids = crate::intersect_sorted(&a.tids, &b.tids);
                if tids.len() >= min_sup {
                    next.push(MinedSet { edges, tids });
                }
            }
        }
        next.sort_by(|a, b| a.edges.cmp(&b.edges));
        all.extend(next.iter().cloned());
        level = next;
    }
    all.truncate(MAX_ITEMSETS);
    all
}

/// A-priori prune: all `k`-subsets of a `k+1` candidate must be in `level`.
fn all_k_subsets_frequent(candidate: &[EdgeId], level: &[MinedSet]) -> bool {
    // Skipping the two subsets that generated the candidate would be a tiny
    // optimization; checking all keeps the code obviously correct.
    for skip in 0..candidate.len() {
        let subset: Vec<EdgeId> = candidate
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, &e)| e)
            .collect();
        if level
            .binary_search_by(|m| m.edges.as_slice().cmp(subset.as_slice()))
            .is_err()
        {
            return false;
        }
    }
    true
}

/// Support of an explicit edge set in a transaction list (test/verification
/// helper and post-hoc support probe).
pub fn support_of(edges: &[EdgeId], transactions: &[Vec<EdgeId>]) -> usize {
    transactions
        .iter()
        .filter(|t| is_subset_sorted(edges, t))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn tx(ids: &[&[u32]]) -> Vec<Vec<EdgeId>> {
        ids.iter()
            .map(|t| t.iter().map(|&i| e(i)).collect())
            .collect()
    }

    #[test]
    fn textbook_example() {
        // Transactions: {1,2,3}, {1,2}, {2,3}, {1,3}, minSup 2.
        let t = tx(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3]]);
        let got = frequent_itemsets(&t, 2);
        let sets: Vec<(Vec<u32>, usize)> = got
            .iter()
            .map(|m| (m.edges.iter().map(|e| e.0).collect(), m.support()))
            .collect();
        assert!(sets.contains(&(vec![1], 3)));
        assert!(sets.contains(&(vec![2], 3)));
        assert!(sets.contains(&(vec![3], 3)));
        assert!(sets.contains(&(vec![1, 2], 2)));
        assert!(sets.contains(&(vec![1, 3], 2)));
        assert!(sets.contains(&(vec![2, 3], 2)));
        // {1,2,3} has support 1 < 2.
        assert!(!sets.iter().any(|(s, _)| s == &vec![1, 2, 3]));
        assert_eq!(sets.len(), 6);
    }

    #[test]
    fn higher_min_sup_is_subset_of_lower() {
        let t = tx(&[&[1, 2, 3, 4], &[1, 2, 3], &[1, 2], &[2, 3, 4]]);
        let lo = frequent_itemsets(&t, 2);
        let hi = frequent_itemsets(&t, 3);
        assert!(hi.len() < lo.len());
        for m in &hi {
            assert!(lo.iter().any(|l| l.edges == m.edges));
        }
    }

    #[test]
    fn tidsets_match_explicit_support() {
        let t = tx(&[&[1, 2, 5], &[2, 5, 7], &[1, 2, 5, 7], &[5, 7]]);
        for m in frequent_itemsets(&t, 2) {
            assert_eq!(m.support(), support_of(&m.edges, &t), "{:?}", m.edges);
            for &tid in &m.tids {
                assert!(is_subset_sorted(&m.edges, &t[tid as usize]));
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(frequent_itemsets(&[], 1).is_empty());
        let t = tx(&[&[3, 9]]);
        let got = frequent_itemsets(&t, 1);
        // {3}, {9}, {3,9}
        assert_eq!(got.len(), 3);
    }

    #[test]
    #[should_panic(expected = "min_sup")]
    fn zero_min_sup_rejected() {
        frequent_itemsets(&[], 0);
    }
}
