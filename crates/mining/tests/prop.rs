//! Property tests: miners against brute-force enumeration on small inputs.

use graphbi_graph::{EdgeId, Universe};
use graphbi_mining::apriori::{frequent_itemsets, support_of};
use graphbi_mining::closure::{closed_itemsets, filter_superseded};
use graphbi_mining::gspan::{is_connected, mine, GspanConfig};
use proptest::prelude::*;

fn transactions() -> impl Strategy<Value = Vec<Vec<EdgeId>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..12, 0..6)
            .prop_map(|s| s.into_iter().map(EdgeId).collect::<Vec<_>>()),
        1..8,
    )
}

/// All non-empty subsets of the union of items, with their support.
fn brute_force(tx: &[Vec<EdgeId>], min_sup: usize) -> Vec<(Vec<EdgeId>, usize)> {
    let mut items: Vec<EdgeId> = tx.iter().flatten().copied().collect();
    items.sort_unstable();
    items.dedup();
    let n = items.len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let set: Vec<EdgeId> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| items[i])
            .collect();
        let sup = support_of(&set, tx);
        if sup >= min_sup {
            out.push((set, sup));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_equals_brute_force(tx in transactions(), min_sup in 1usize..4) {
        let mut got: Vec<(Vec<EdgeId>, usize)> = frequent_itemsets(&tx, min_sup)
            .into_iter()
            .map(|m| (m.edges, m.tids.len()))
            .collect();
        got.sort();
        prop_assert_eq!(got, brute_force(&tx, min_sup));
    }

    #[test]
    fn closed_sets_are_closed_and_complete(tx in transactions(), min_sup in 1usize..3) {
        let closed = closed_itemsets(&tx, min_sup);
        for m in &closed {
            // Closure property: the set equals the intersection of all
            // transactions containing it.
            let mut inter: Option<Vec<EdgeId>> = None;
            for &tid in &m.tids {
                let t = &tx[tid as usize];
                inter = Some(match inter {
                    None => t.clone(),
                    Some(i) => i.into_iter().filter(|e| t.contains(e)).collect(),
                });
            }
            prop_assert_eq!(inter.unwrap(), m.edges.clone());
            prop_assert_eq!(m.tids.len(), support_of(&m.edges, &tx));
        }
        // Completeness: filter_superseded(frequent) has the same edge sets.
        let mut a: Vec<Vec<EdgeId>> = closed.into_iter().map(|m| m.edges).collect();
        let mut b: Vec<Vec<EdgeId>> =
            filter_superseded(frequent_itemsets(&tx, min_sup)).into_iter().map(|m| m.edges).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gspan_patterns_are_connected_with_exact_support(
        edges in prop::collection::vec((0u32..8, 0u32..8), 1..10),
        picks in prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 1..6), 1..6),
    ) {
        // Build a universe from random node pairs.
        let mut u = Universe::new();
        let ids: Vec<EdgeId> = edges
            .iter()
            .map(|&(a, b)| u.edge_by_names(&format!("n{a}"), &format!("n{b}")))
            .collect();
        // Records are random subsets of the universe's edges.
        let records: Vec<Vec<EdgeId>> = picks
            .iter()
            .map(|p| {
                let mut r: Vec<EdgeId> = p.iter().map(|ix| ids[ix.index(ids.len())]).collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let got = mine(
            &records,
            &u,
            &GspanConfig { min_support: 1, max_edges: 5, max_patterns: 10_000, ..GspanConfig::default() },
        );
        let mut seen = std::collections::BTreeSet::new();
        for m in &got {
            prop_assert!(is_connected(&m.edges, &u));
            prop_assert!(seen.insert(m.edges.clone()), "duplicate {:?}", m.edges);
            let expect: Vec<u32> = records
                .iter()
                .enumerate()
                .filter(|(_, r)| m.edges.iter().all(|e| r.contains(e)))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&m.tids, &expect);
        }
    }
}
