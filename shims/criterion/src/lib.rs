//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's bench files use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], `criterion_group!`/`criterion_main!` — backed by a
//! simple wall-clock timer: a short warm-up, then timed batches until a
//! time budget is spent, reporting the per-iteration mean and min.
//!
//! Statistical analysis, plots, and baselines of real criterion are out of
//! scope; the numbers are honest medians-of-means, good enough for the
//! relative comparisons the paper's figures make. Under `cargo test`
//! (which runs `harness = false` bench targets with `--test`), every
//! benchmark body executes exactly once so benches stay smoke-tested.

use std::time::{Duration, Instant};

/// Re-export: benches use `std::hint::black_box` via criterion's name too.
pub use std::hint::black_box;

/// Top-level handle passed to every bench function.
pub struct Criterion {
    /// Per-benchmark measurement budget.
    budget: Duration,
    /// Test mode: run each body once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            budget: Duration::from_millis(200),
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.budget, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.parent.budget, self.parent.test_mode, &mut f);
        self
    }

    /// Runs one parameterized benchmark; the input is passed through.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.parent.budget,
            self.parent.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of a (possibly parameterized) benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] times a closure.
pub struct Bencher {
    mode: BenchMode,
    /// (total elapsed, iterations) accumulated by `iter`.
    samples: Vec<(Duration, u64)>,
}

enum BenchMode {
    /// Run once, record nothing (test mode).
    Once,
    /// Warm up then measure until the budget is spent.
    Measure { budget: Duration },
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement budget is
    /// spent (or exactly once in test mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::Once => {
                black_box(f());
            }
            BenchMode::Measure { budget } => {
                // Warm-up: estimate per-iteration cost.
                let warm_start = Instant::now();
                black_box(f());
                let per_iter = warm_start.elapsed().max(Duration::from_nanos(1));
                // Batch size aiming for ~10 samples within budget.
                let batch =
                    (budget.as_nanos() / per_iter.as_nanos().max(1) / 10).clamp(1, 1 << 20) as u64;
                let deadline = Instant::now() + budget;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    self.samples.push((t0.elapsed(), batch));
                }
            }
        }
    }
}

fn run_one(label: &str, budget: Duration, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode: if test_mode {
            BenchMode::Once
        } else {
            BenchMode::Measure { budget }
        },
        samples: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("bench {label}: ok (test mode)");
        return;
    }
    if b.samples.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|&(d, n)| d.as_secs_f64() / n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "bench {label}: mean {} min {} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("lit").label, "lit");
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            test_mode: false,
        };
        let mut ran = 0u64;
        c.bench_function("tiny", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }
}
