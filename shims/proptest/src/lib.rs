//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a deterministic mini-implementation of the proptest API subset its test
//! suites use: the [`proptest!`] macro, range/tuple/collection strategies,
//! [`prop_oneof!`], `any::<T>()`, `prop_map`/`prop_flat_map`, and the
//! `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its replay seed; re-run with
//!   `PROPTEST_SEED=<seed>` to reproduce the exact inputs. (The workspace's
//!   own `graphbi-testkit` provides domain-aware shrinking where it
//!   matters.)
//! * **Deterministic by default.** Case `i` of test `t` derives from
//!   `fnv(t) ⊕ i`, so runs are reproducible without a persistence file.
//! * **String strategies** support the character-class/quantifier subset
//!   `[...]{m,n}` / `?` / `*` / `+` of regex syntax, not full regex.

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod num;

pub mod sample;

pub mod string;

mod rng;

pub use rng::TestRng;

use strategy::Strategy;

/// `any::<T>()` — the canonical strategy of an [`Arbitrary`] type.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Types with a canonical strategy over their whole domain.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyOf(std::marker::PhantomData)
            }
        }
        impl Strategy for strategy::AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    type Strategy = strategy::AnyOf<bool>;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyOf(std::marker::PhantomData)
    }
}
impl Strategy for strategy::AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    type Strategy = strategy::AnyOf<sample::Index>;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyOf(std::marker::PhantomData)
    }
}
impl Strategy for strategy::AnyOf<sample::Index> {
    type Value = sample::Index;
    fn generate(&self, rng: &mut TestRng) -> sample::Index {
        sample::Index::new(rng.next_u64())
    }
}

/// Everything a test file needs from one glob import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::num::u32::ANY`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &__cfg, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __res
            });
        }
    )*};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assert_eq failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assert_eq failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assert_ne failed: both `{:?}`", __a);
    }};
}

/// Rejects the current case (drawn inputs don't satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
