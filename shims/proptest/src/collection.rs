//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};

use crate::strategy::Strategy;
use crate::TestRng;

/// A size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Vectors of `size.draw()` elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Sets with a size drawn from `size` — best-effort when the element domain
/// is smaller than the requested size (upstream proptest behaves the same
/// way via rejection).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 32 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Maps with a size drawn from `size`; duplicate keys collapse, retried a
/// bounded number of times.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.draw(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 32 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = vec(0u32..100, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = btree_set(0u32..1000, 3..=6).generate(&mut rng);
            assert!((3..=6).contains(&s.len()));
            let m = btree_map(0u32..1000, 0.0f64..1.0, 1..4).generate(&mut rng);
            assert!((1..4).contains(&m.len()));
        }
    }

    #[test]
    fn small_domains_degrade_gracefully() {
        let mut rng = TestRng::seed_from_u64(13);
        // Domain of 2 but size request up to 5: must terminate with ≤ 2.
        for _ in 0..50 {
            let s = btree_set(0u32..2, 4..6).generate(&mut rng);
            assert!(s.len() <= 2);
        }
    }
}
