//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;

use crate::TestRng;

/// A recipe for generating values of one type from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains into a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Marker strategy for whole-domain draws (`any::<T>()`, `num::*::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(pub PhantomData<T>);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_combinators() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..500 {
            let v = (0u32..10).generate(&mut rng);
            assert!(v < 10);
            let (a, b) = ((1u8..=3), (0.0f64..1.0)).generate(&mut rng);
            assert!((1..=3).contains(&a) && (0.0..1.0).contains(&b));
            let m = (0usize..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!(m % 2 == 0 && m < 10);
            let f = (1usize..4)
                .prop_flat_map(|n| crate::collection::vec(0u32..9, n..n + 1))
                .generate(&mut rng);
            assert!((1..4).contains(&f.len()));
            let j = Just(41).generate(&mut rng);
            assert_eq!(j, 41);
        }
    }

    #[test]
    fn union_covers_all_branches() {
        let u = Union::new(vec![(0u32..1).boxed(), (10u32..11).boxed()]);
        let mut rng = TestRng::seed_from_u64(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 10]);
    }
}
