//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is only known inside the test
/// body. Generated over the full `u64` domain and reduced modulo the live
/// length at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wraps a raw draw.
    pub fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Projects onto `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index called with empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::Index;

    #[test]
    fn stays_in_bounds() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let ix = Index::new(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(ix.index(len) < len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_panics() {
        Index::new(3).index(0);
    }
}
