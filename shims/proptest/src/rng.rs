//! The deterministic generator behind every strategy draw.

/// xoshiro256++ seeded through SplitMix64 — self-contained so the shim has
/// no dependencies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = split_mix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`. Panics when `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }

    /// Uniform draw from the unit interval `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One SplitMix64 step.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = TestRng::seed_from_u64(5);
        let mut b = TestRng::seed_from_u64(5);
        let mut c = TestRng::seed_from_u64(6);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn below_and_unit_stay_in_range() {
        let mut r = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
