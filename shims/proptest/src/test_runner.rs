//! Case execution: configuration, failure type, and the runner loop.

use crate::TestRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not pass.
pub enum TestCaseError {
    /// Assertion failure — aborts the test with a replay seed.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped, not counted.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "Fail({m})"),
            TestCaseError::Reject => write!(f, "Reject"),
        }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cfg.cases` accepted cases of `f`, panicking with a replay seed on
/// the first failure. `PROPTEST_SEED=<n>` overrides the base seed so a
/// reported failure can be reproduced exactly.
pub fn run_cases(
    name: &str,
    cfg: &Config,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}")),
        Err(_) => fnv1a(name),
    };
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let budget = cfg.cases as u64 * 10 + 100;
    while accepted < cfg.cases {
        if attempts >= budget {
            panic!(
                "proptest {name}: too many prop_assume! rejections \
                 ({accepted}/{} cases after {attempts} attempts)",
                cfg.cases
            );
        }
        let case_seed = base
            .wrapping_add(attempts)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempts += 1;
        let mut rng = TestRng::seed_from_u64(case_seed);
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed at case {accepted} \
                     (replay with PROPTEST_SEED={base}): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut n = 0;
        run_cases("counter", &Config::with_cases(17), |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "replay with PROPTEST_SEED=")]
    fn failure_reports_replay_seed() {
        run_cases("boom", &Config::default(), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn reject_budget_is_bounded() {
        run_cases("always_reject", &Config::with_cases(4), |_rng| {
            Err(TestCaseError::Reject)
        });
    }
}
