//! String generation from a small regex subset.
//!
//! Supports what the workspace's test suites use: literal characters,
//! `[...]` classes with ranges (`a-z`) and plain characters, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats capped at
//! 8 so generated strings stay small).

use crate::TestRng;

const UNBOUNDED_CAP: usize = 8;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

impl Atom {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(cs) => cs[rng.below(cs.len() as u64) as usize],
        }
    }
}

/// Generates one string matching `pattern`. Panics on syntax outside the
/// supported subset, since a silently wrong generator would corrupt tests.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                        members.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(members)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling \\ in pattern {pattern:?}"));
                i += 2;
                Atom::Literal(c)
            }
            c if "({)}|.^$".contains(c) => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad repeat {body:?}")),
                        n.parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad repeat {body:?}")),
                    ),
                    None => {
                        let n = body
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad repeat {body:?}"));
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted repeat in pattern {pattern:?}");
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(atom.draw(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::TestRng;

    #[test]
    fn identifier_pattern_matches_shape() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9]{0,4}", &mut rng);
            assert!((1..=5).contains(&s.len()), "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_quantifiers_and_escapes() {
        let mut rng = TestRng::seed_from_u64(4);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a{3}", &mut rng), "aaa");
        for _ in 0..50 {
            let s = generate_matching("x[01]+\\.", &mut rng);
            assert!(s.starts_with('x') && s.ends_with('.'));
            assert!(s.len() >= 3);
        }
    }
}
