//! Whole-domain numeric strategies (`prop::num::u32::ANY`, …).

macro_rules! any_mod {
    ($($mod_name:ident => $t:ty),*) => {$(
        /// Whole-domain strategy constants for one integer type.
        pub mod $mod_name {
            use crate::strategy::AnyOf;
            use std::marker::PhantomData;

            /// Uniform over the full domain of the type.
            pub const ANY: AnyOf<$t> = AnyOf(PhantomData);
        }
    )*};
}

any_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize);

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::TestRng;

    #[test]
    fn any_spans_more_than_small_values() {
        let mut rng = TestRng::seed_from_u64(7);
        let mut saw_large = false;
        for _ in 0..64 {
            if super::u32::ANY.generate(&mut rng) > u32::MAX / 2 {
                saw_large = true;
            }
        }
        assert!(saw_large);
    }
}
