//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset* of `rand 0.8` that graphbi actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range`/`gen_bool`/`gen`. The generator is a
//! SplitMix64-seeded xoshiro256++, which is deterministic, fast, and of
//! ample statistical quality for synthetic-workload generation — but it is
//! **not** the upstream `StdRng` (ChaCha12): streams differ from real
//! `rand`, which only matters if a seed were expected to reproduce numbers
//! from outside this repository.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `rand` trait's u64 entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step — used to expand seeds and derive child seeds.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types a range can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges,
    /// matching `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform `u64` (the only `gen::<T>()` instantiation supported).
    #[inline]
    fn gen(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<T: RngCore> Rng for T {}

/// The named generators of `rand::rngs`.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the repo's `StdRng` stand-in).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = split_mix64(&mut sm);
            }
            // An all-zero state is the one fixed point; the SplitMix64
            // expansion cannot produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = r.gen_range(5u32..=5);
            assert_eq!(v, 5);
            let f = r.gen_range(0.5f64..10.5);
            assert!((0.5..10.5).contains(&f));
            let i = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
