//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes 1.x` the workspace's codecs use:
//! [`Bytes`] (a cheaply cloneable, sliceable view over shared bytes),
//! [`BytesMut`] (a growable buffer), and the [`Buf`]/[`BufMut`] cursor
//! traits with little-endian integer accessors. Semantics match upstream
//! for this subset — in particular [`Buf`] methods *consume* from the
//! front, [`Buf::get_u32_le`]-style reads panic when underfull (callers
//! guard with [`Buf::remaining`]), and [`Bytes::slice`] is zero-copy.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a contiguous byte sequence; reads consume from the
/// front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// Immutable shared bytes: cheap clones, zero-copy slices, consuming reads.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view, indexed relative to the current view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The unread bytes as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}
impl Eq for Bytes {}

/// Shared Debug body for both buffer types.
macro_rules! fmt_bytes {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref().iter().take(64) {
                write!(f, "\\x{b:02x}")?;
            }
            if self.as_ref().len() > 64 {
                write!(f, "…")?;
            }
            write!(f, "\"")
        }
    };
}

impl std::fmt::Debug for Bytes {
    fmt_bytes!();
}

/// Growable byte buffer; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts to immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fmt_bytes!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(3.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), 3.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_are_views_and_consume_independently() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6]);
        let mut head = b.slice(..4);
        let tail = b.slice(4..);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.as_ref_slice(), &[5, 6]);
        head.advance(2);
        assert_eq!(head.chunk(), &[3, 4]);
        // Original untouched.
        assert_eq!(b.len(), 6);
        // Nested relative slicing.
        let inner = tail.slice(1..);
        assert_eq!(inner.as_ref_slice(), &[6]);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        let first = b.copy_to_bytes(3);
        assert_eq!(first.as_ref_slice(), &[9, 8, 7]);
        assert_eq!(b.chunk(), &[6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underfull_read_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
