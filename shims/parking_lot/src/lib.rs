//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards returned directly from `lock`/`read`/`write`). Poisoned locks —
//! a panic while holding the guard — are recovered rather than propagated,
//! which matches `parking_lot`'s behaviour of not tracking poison at all.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the panic does not poison the lock.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
