//! `Session::evaluate_many`: responses come back in request order, and
//! duplicated requests are answered (and costed) exactly like their first
//! occurrence — on both the in-memory and the disk backend.

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, PathAggQuery, QueryRequest, Session};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("graphbi-batch-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A duplicate-heavy workload: three queries interleaved and repeated,
/// one option-variant that must stay distinct, and a repeated aggregate.
fn batch_of(qs: &[graphbi_graph::GraphQuery]) -> Vec<QueryRequest> {
    let mut batch = Vec::new();
    for &i in &[0usize, 1, 2, 0, 1, 0, 2, 1, 0] {
        batch.push(QueryRequest::new(qs[i].clone()));
    }
    // Same query, different plan options: NOT a duplicate.
    batch.push(QueryRequest::new(qs[0].clone()).oblivious());
    batch.push(QueryRequest::expr(graphbi::QueryExpr::and_not(
        graphbi::QueryExpr::Atom(qs[1].clone()),
        graphbi::QueryExpr::Atom(qs[2].clone()),
    )));
    let agg = PathAggQuery::new(qs[1].clone(), AggFn::Sum);
    batch.push(QueryRequest::aggregate(agg.clone()));
    batch.push(QueryRequest::aggregate(agg));
    batch
}

fn assert_ordered_and_deduped<S: Session>(backend: &S, batch: &[QueryRequest], label: &str) {
    let answers = backend.evaluate_many(batch).unwrap();
    assert_eq!(
        answers.len(),
        batch.len(),
        "{label}: one response per request"
    );

    // Order: every batched answer equals its request executed alone.
    for (i, (req, (resp, _))) in batch.iter().zip(&answers).enumerate() {
        let (alone, _) = backend.execute(req).unwrap();
        assert_eq!(resp, &alone, "{label}: batch[{i}] answer out of order");
    }

    // Dedup: a duplicate reports its first occurrence's answer AND cost.
    // (Without dedup the disk backend would report warm-cache stats for
    // the repeat, not the first occurrence's cold fetch counts.)
    let mut duplicates = 0;
    for (i, req) in batch.iter().enumerate() {
        let first = batch.iter().position(|r| r == req).unwrap();
        if first < i {
            duplicates += 1;
            assert_eq!(
                answers[i].0, answers[first].0,
                "{label}: batch[{i}] disagrees with its duplicate batch[{first}]"
            );
            assert_eq!(
                answers[i].1, answers[first].1,
                "{label}: batch[{i}] cost differs from its duplicate batch[{first}]"
            );
        }
    }
    assert!(duplicates >= 7, "{label}: batch was not duplicate-heavy");
}

#[test]
fn evaluate_many_is_ordered_and_deduped_on_both_backends() {
    let spec = DatasetSpec {
        n_records: 200,
        ..DatasetSpec::ny(200)
    };
    let d = Dataset::synthesize(&spec);
    let qs = d.queries(&QuerySpec::zipf(8));
    assert!(qs.len() >= 3);
    let mut mem = GraphStore::load(d.universe, &d.records);
    mem.advise_views(&qs, 4);

    let dir = tmpdir("dedup");
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 64 << 10).unwrap();

    let batch = batch_of(&qs);
    assert_ordered_and_deduped(&mem, &batch, "mem");
    assert_ordered_and_deduped(&disk, &batch, "disk");

    // The two backends also agree with each other, response for response.
    let m = mem.evaluate_many(&batch).unwrap();
    let k = disk.evaluate_many(&batch).unwrap();
    for (i, ((mr, _), (dr, _))) in m.iter().zip(&k).enumerate() {
        assert_eq!(mr, dr, "batch[{i}]: mem and disk disagree");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
