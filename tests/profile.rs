//! `EXPLAIN ANALYZE` end-to-end: profiling a request returns the same
//! answer and the same logical cost as an untraced run, on both backends,
//! and the JSON rendering parses back with the workspace's own parser.

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, PathAggQuery, Profile, PHASE_NAMES};
use graphbi::{QueryRequest, Response, Session};
use graphbi_columnstore::IoStats;
use graphbi_obs::json::{self, Json};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("graphbi-profile-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build() -> (GraphStore, Vec<graphbi_graph::GraphQuery>) {
    let spec = DatasetSpec {
        n_records: 400,
        ..DatasetSpec::ny(400)
    };
    let d = Dataset::synthesize(&spec);
    let qs = d.queries(&QuerySpec::zipf(24));
    let mut store = GraphStore::load(d.universe, &d.records);
    store.advise_views(&qs, 8);
    store.advise_agg_views(&qs, AggFn::Sum, 8).unwrap();
    (store, qs)
}

/// Logical cost with the physical-cache counters masked out: a profiled
/// re-run may hit a warmer cache than the untraced run it is compared to.
fn logical(stats: &IoStats) -> IoStats {
    let mut s = *stats;
    s.disk_reads = 0;
    s.disk_bytes = 0;
    s
}

fn requests(qs: &[graphbi_graph::GraphQuery]) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for (i, q) in qs.iter().take(8).enumerate() {
        let req = QueryRequest::new(q.clone());
        reqs.push(if i % 2 == 0 { req } else { req.shards(3) });
        reqs.push(QueryRequest::aggregate(PathAggQuery::new(q.clone(), AggFn::Sum)).shards(2));
    }
    reqs
}

fn check_profile(resp: &Response, plain: &Response, prof: &Profile, backend: &str) {
    assert_eq!(resp, plain, "tracing changed the answer on {backend}");
    let names: Vec<&str> = prof.phases.iter().map(|p| p.name).collect();
    assert_eq!(names, PHASE_NAMES);
    assert_eq!(prof.backend, backend);
    assert!(prof.phases[0].spans >= 1, "plan phase always runs");
    let doc = json::parse(&prof.render_json()).expect("profile JSON parses");
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some(backend));
    for name in PHASE_NAMES {
        let p = doc
            .get("phases")
            .and_then(|p| p.get(name))
            .unwrap_or_else(|| panic!("phase {name} missing from JSON"));
        assert!(p.get("wall_ns").and_then(Json::as_u64).is_some());
        assert!(p.get("spans").and_then(Json::as_u64).is_some());
    }
    assert_eq!(
        doc.get("io")
            .and_then(|io| io.get("values_fetched"))
            .and_then(Json::as_u64),
        Some(prof.stats.values_fetched)
    );
}

#[test]
fn memory_profile_is_invisible_and_complete() {
    let (store, qs) = build();
    for req in requests(&qs) {
        let (plain, plain_stats) = Session::execute(&store, &req).unwrap();
        let (resp, prof) = store.profile(&req).unwrap();
        check_profile(&resp, &plain, &prof, "memory");
        assert_eq!(prof.stats, plain_stats, "tracing changed memory stats");
        assert_eq!(prof.cache_hits + prof.cache_misses, 0, "no cache in memory");
    }
}

#[test]
fn disk_profile_is_invisible_and_complete() {
    let dir = tmpdir("disk");
    let (mem, qs) = build();
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 64 << 20).unwrap();
    for req in requests(&qs) {
        let (plain, plain_stats) = Session::execute(&disk, &req).unwrap();
        let (resp, prof) = disk.profile(&req).unwrap();
        check_profile(&resp, &plain, &prof, "disk");
        assert_eq!(
            logical(&prof.stats),
            logical(&plain_stats),
            "tracing changed the disk backend's logical cost"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_profile_records_shard_and_merge_spans() {
    let (store, qs) = build();
    let q = qs
        .iter()
        .find(|q| !q.is_empty())
        .expect("workload has non-empty queries");
    let (_, prof) = store
        .profile(&QueryRequest::new(q.clone()).shards(4))
        .unwrap();
    assert!(prof.shard_spans > 0, "sharded run must record shard spans");
    let merge = prof.phases.iter().find(|p| p.name == "merge").unwrap();
    assert!(merge.spans >= 1, "sharded run must record a merge phase");
}

#[test]
fn disk_profile_reports_cache_activity() {
    let dir = tmpdir("cache");
    let (mem, qs) = build();
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 64 << 20).unwrap();
    let q = qs.iter().find(|q| !q.is_empty()).unwrap();
    let req = QueryRequest::new(q.clone());
    let (_, cold) = disk.profile(&req).unwrap();
    assert!(cold.cache_misses > 0, "cold profile must see cache misses");
    let (_, warm) = disk.profile(&req).unwrap();
    assert!(warm.cache_hits > 0, "warm profile must see cache hits");
    assert_eq!(warm.cache_misses, 0, "warm profile is fully cached");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn estimate_bounds_actual_matches_on_structural_queries() {
    let (store, qs) = build();
    for q in qs.iter().take(8) {
        let (_, prof) = store.profile(&QueryRequest::new(q.clone())).unwrap();
        assert!(
            prof.matches <= prof.estimated_matches,
            "estimate {} below actual {} for {q:?}",
            prof.estimated_matches,
            prof.matches
        );
    }
}
