//! Property tests for the MVCC write path: random base stores and random
//! commit streams, checked for three algebraic identities —
//!
//! * **merge ≡ rebuild**: a base+delta store answers exactly like a store
//!   loaded from scratch over the visible records;
//! * **WAL replay is idempotent**: reopening a disk store any number of
//!   times yields the same answers — replayed commits never double-apply;
//! * **compaction is transparent**: a store that compacts mid-stream (and
//!   again at the end) answers exactly like one that never compacts.

use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::save_store_with;
use graphbi::{AggFn, GraphStore, MvccStore, PathAggQuery, QueryExpr, QueryRequest, Session};
use graphbi_columnstore::{DeltaOp, FaultVfs, Verify};
use graphbi_graph::{EdgeId, GraphQuery, GraphRecord, RecordBuilder, Universe};
use proptest::prelude::*;

/// A chain universe n0→n1→…→n12: contiguous edge ranges are paths.
const UNIVERSE_EDGES: u32 = 12;

fn build_universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..UNIVERSE_EDGES {
        u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1));
    }
    u
}

fn record_strategy() -> impl Strategy<Value = GraphRecord> {
    prop::collection::btree_map(0u32..UNIVERSE_EDGES, 0.5f64..100.0, 1..8).prop_map(|edges| {
        let mut b = RecordBuilder::new();
        for (e, m) in edges {
            b.add(EdgeId(e), m);
        }
        b.build()
    })
}

fn records_strategy() -> impl Strategy<Value = Vec<GraphRecord>> {
    prop::collection::vec(record_strategy(), 1..24)
}

/// A raw commit stream: `(update, rid_seed, record)` triples. `rid_seed`
/// is resolved against the record count visible at apply time, so every
/// update targets an existing row (base or an earlier insert).
fn ops_strategy() -> impl Strategy<Value = Vec<(bool, usize, GraphRecord)>> {
    prop::collection::vec((any::<bool>(), 0usize..1024, record_strategy()), 1..30)
}

/// Contiguous edge ranges are paths in the chain universe.
fn path_query() -> impl Strategy<Value = GraphQuery> {
    (0u32..UNIVERSE_EDGES, 1u32..5).prop_map(|(start, len)| {
        let end = (start + len).min(UNIVERSE_EDGES);
        GraphQuery::from_edges((start..end).map(EdgeId).collect())
    })
}

/// Resolves the raw stream into concrete [`DeltaOp`] batches (chunks of
/// `batch` ops) plus the model's final visible record vector.
fn resolve(
    base: &[GraphRecord],
    raw: &[(bool, usize, GraphRecord)],
    batch: usize,
) -> (Vec<Vec<DeltaOp>>, Vec<GraphRecord>) {
    let mut visible: Vec<GraphRecord> = base.to_vec();
    let mut ops = Vec::with_capacity(raw.len());
    for (update, rid_seed, rec) in raw {
        if *update {
            let rid = rid_seed % visible.len();
            visible[rid] = rec.clone();
            ops.push(DeltaOp::Update(rid as u32, rec.clone()));
        } else {
            visible.push(rec.clone());
            ops.push(DeltaOp::Insert(rec.clone()));
        }
    }
    let batches = ops.chunks(batch.max(1)).map(<[DeltaOp]>::to_vec).collect();
    (batches, visible)
}

/// One request of every kind over the generated queries.
fn requests(queries: &[GraphQuery]) -> Vec<QueryRequest> {
    let mut reqs: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()))
        .collect();
    if queries.len() >= 2 {
        reqs.push(QueryRequest::expr(QueryExpr::and_not(
            QueryExpr::Atom(queries[0].clone()),
            QueryExpr::Atom(queries[1].clone()),
        )));
    }
    reqs.push(QueryRequest::aggregate(PathAggQuery::new(
        queries[0].clone(),
        AggFn::Sum,
    )));
    reqs
}

/// Responses only — IoStats legitimately differ across engines/caches.
fn answers<S: Session>(store: &S, reqs: &[QueryRequest]) -> Vec<graphbi::Response> {
    reqs.iter()
        .map(|r| store.execute(r).expect("answer request").0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_equals_rebuild(
        base in records_strategy(),
        raw in ops_strategy(),
        batch in 1usize..6,
        queries in prop::collection::vec(path_query(), 1..4),
    ) {
        let (batches, visible) = resolve(&base, &raw, batch);
        let store = MvccStore::new_mem(GraphStore::load(build_universe(), &base));
        for b in &batches {
            store.commit(b).expect("mem commit");
        }
        let rebuilt = GraphStore::load(build_universe(), &visible);
        let reqs = requests(&queries);
        prop_assert_eq!(store.record_count(), visible.len() as u64);
        prop_assert_eq!(answers(&store, &reqs), answers(&rebuilt, &reqs));
    }

    #[test]
    fn wal_replay_is_idempotent(
        base in records_strategy(),
        raw in ops_strategy(),
        batch in 1usize..6,
        queries in prop::collection::vec(path_query(), 1..4),
    ) {
        let (batches, visible) = resolve(&base, &raw, batch);
        let vfs = Arc::new(FaultVfs::new(0x1de8));
        let dir = PathBuf::from("/propwal");
        save_store_with(vfs.as_ref(), &GraphStore::load(build_universe(), &base), &dir)
            .expect("save base");
        let epochs = {
            let store = MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums)
                .expect("open");
            for b in &batches {
                store.commit(b).expect("wal commit");
            }
            store.epoch()
        };
        let reqs = requests(&queries);
        // Reopen twice: replay must hit the same epoch and the same
        // answers both times — never applying a frame twice.
        let first = {
            let store = MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums)
                .expect("first reopen");
            prop_assert_eq!(store.epoch(), epochs);
            prop_assert_eq!(store.record_count(), visible.len() as u64);
            answers(&store, &reqs)
        };
        let second = {
            let store = MvccStore::open_disk(&dir, 64 << 10, vfs, Verify::Checksums)
                .expect("second reopen");
            prop_assert_eq!(store.epoch(), epochs);
            answers(&store, &reqs)
        };
        prop_assert_eq!(&first, &second);
        let rebuilt = GraphStore::load(build_universe(), &visible);
        prop_assert_eq!(&first, &answers(&rebuilt, &reqs));
    }

    #[test]
    fn compaction_is_transparent(
        base in records_strategy(),
        raw in ops_strategy(),
        batch in 1usize..6,
        split in 0usize..30,
        queries in prop::collection::vec(path_query(), 1..4),
    ) {
        let (batches, visible) = resolve(&base, &raw, batch);
        let universe = build_universe();
        let dir = PathBuf::from("/propcompact");
        let open = |seed: u64| {
            let vfs = Arc::new(FaultVfs::new(seed));
            save_store_with(vfs.as_ref(), &GraphStore::load(universe.clone(), &base), &dir)
                .expect("save base");
            (MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums)
                .expect("open"), vfs)
        };
        let (compacting, cvfs) = open(0xc0);
        let (plain, _pvfs) = open(0xf1);
        let mid = split % (batches.len() + 1);
        for (i, b) in batches.iter().enumerate() {
            if i == mid {
                compacting.compact().expect("mid-stream compact");
            }
            compacting.commit(b).expect("commit (compacting)");
            plain.commit(b).expect("commit (plain)");
        }
        compacting.compact().expect("final compact");
        compacting.gc().expect("gc");
        let reqs = requests(&queries);
        prop_assert_eq!(answers(&compacting, &reqs), answers(&plain, &reqs));
        prop_assert_eq!(compacting.epoch(), plain.epoch());
        prop_assert_eq!(compacting.record_count(), visible.len() as u64);
        // And the compacted store still reopens to the same answers: the
        // fold watermark makes the truncated log and the new generation
        // agree.
        let baseline = answers(&compacting, &reqs);
        drop(compacting);
        let reopened = MvccStore::open_disk(&dir, 64 << 10, cvfs, Verify::Checksums)
            .expect("reopen compacted");
        prop_assert_eq!(answers(&reopened, &reqs), baseline);
    }
}
