//! Property tests at the store level: random record collections and random
//! queries, checked against a brute-force model and across engines.

use graphbi::{AggFn, GraphStore, PathAggQuery, QueryRequest, Session};
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};
use graphbi_graph::{EdgeId, GraphQuery, GraphRecord, RecordBuilder, Universe};
use proptest::prelude::*;

/// A chain universe n0→n1→…→n20 gives 20 edge ids whose shapes are paths,
/// so random edge subsets make valid records and path queries.
const UNIVERSE_EDGES: u32 = 20;

fn build_universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..UNIVERSE_EDGES {
        u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1));
    }
    u
}

fn records_strategy() -> impl Strategy<Value = Vec<GraphRecord>> {
    prop::collection::vec(
        prop::collection::btree_map(0u32..UNIVERSE_EDGES, 0.5f64..100.0, 1..12),
        1..40,
    )
    .prop_map(|recs| {
        recs.into_iter()
            .map(|edges| {
                let mut b = RecordBuilder::new();
                for (e, m) in edges {
                    b.add(EdgeId(e), m);
                }
                b.build()
            })
            .collect()
    })
}

/// Contiguous edge ranges are paths in the chain universe.
fn path_query() -> impl Strategy<Value = GraphQuery> {
    (0u32..UNIVERSE_EDGES, 1u32..6).prop_map(|(start, len)| {
        let end = (start + len).min(UNIVERSE_EDGES);
        GraphQuery::from_edges((start..end).map(EdgeId).collect())
    })
}

fn matches(records: &[GraphRecord], q: &GraphQuery) -> Vec<u32> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.contains_all(q.edges()))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_model_and_baselines(records in records_strategy(), q in path_query()) {
        let u = build_universe();
        let row = RowStore::load(&records);
        let rdf = RdfStore::load(&records);
        let graph = GraphDb::load(&records, &u);
        let store = GraphStore::load(u, &records);

        let (result, _) = store.evaluate(&q);
        prop_assert_eq!(&result.records, &matches(&records, &q));
        prop_assert_eq!(row.evaluate(&q), result.clone());
        prop_assert_eq!(rdf.evaluate(&q), result.clone());
        prop_assert_eq!(graph.evaluate(&q), result.clone());
    }

    #[test]
    fn views_are_transparent(
        records in records_strategy(),
        queries in prop::collection::vec(path_query(), 1..6),
        budget in 0usize..6,
    ) {
        let u = build_universe();
        let mut store = GraphStore::load(u, &records);
        let baseline: Vec<_> = queries.iter().map(|q| store.evaluate(q).0).collect();
        store.advise_views(&queries, budget);
        for (q, expect) in queries.iter().zip(&baseline) {
            let (got, s_views) = store.evaluate(q);
            prop_assert_eq!(&got, expect);
            let (_, s_obl) = store
                .execute(&QueryRequest::new(q.clone()).oblivious())
                .unwrap();
            prop_assert!(s_views.structural_columns() <= s_obl.structural_columns());
        }
    }

    #[test]
    fn agg_views_are_transparent(
        records in records_strategy(),
        queries in prop::collection::vec(path_query(), 1..6),
        budget in 0usize..6,
    ) {
        let u = build_universe();
        let mut store = GraphStore::load(u, &records);
        let paqs: Vec<PathAggQuery> = queries
            .iter()
            .map(|q| PathAggQuery::new(q.clone(), AggFn::Sum))
            .collect();
        let baseline: Vec<_> = paqs
            .iter()
            .map(|p| store.path_aggregate(p).unwrap().0)
            .collect();
        store.advise_agg_views(&queries, AggFn::Sum, budget).unwrap();
        for (p, expect) in paqs.iter().zip(&baseline) {
            let (got, _) = store.path_aggregate(p).unwrap();
            prop_assert_eq!(got.records.clone(), expect.records.clone());
            prop_assert_eq!(got.path_count, expect.path_count);
            for (a, b) in got.values.iter().zip(&expect.values) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn path_sum_equals_model(records in records_strategy(), q in path_query()) {
        let u = build_universe();
        let store = GraphStore::load(u, &records);
        let (agg, _) = store
            .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))
            .unwrap();
        for (i, &rid) in agg.records.iter().enumerate() {
            let expect: f64 = q
                .edges()
                .iter()
                .map(|&e| records[rid as usize].measure(e).unwrap())
                .sum();
            prop_assert!((agg.row(i)[0] - expect).abs() < 1e-9);
        }
    }
}
