//! Full WMS pipeline (§6.2): cyclic process traces → DAG flattening →
//! column store → path analytics over versioned states.

use graphbi::{AggFn, GraphStore, PathAggQuery};
use graphbi_graph::{GraphQuery, Universe};
use graphbi_workload::scenarios::WorkflowScenario;

#[test]
fn rework_loops_are_queryable_after_flattening() {
    let mut u = Universe::new();
    let wf = WorkflowScenario::build(&mut u, 5);
    let states = wf.states().to_vec();
    let instances = wf.instances(&mut u, 400, 0.25, 42);
    let store = GraphStore::load(u, &instances);
    assert_eq!(store.record_count(), 400);

    // The *unversioned* happy path stage0→…→stage4 is traversed exactly by
    // the instances that never reworked: after a bounce, forward progress
    // continues on versioned stage copies (stage1~2→stage2~2…), so the base
    // edges stay first-pass-only. With 25% rework per step, strictly
    // between zero and all instances are rework-free.
    let happy: Vec<_> = states
        .windows(2)
        .map(|w| {
            store
                .universe()
                .find_edge(w[0], w[1])
                .expect("pipeline edge")
        })
        .collect();
    let q = GraphQuery::from_edges(happy);
    let (result, _) = store.evaluate(&q);
    assert!(
        !result.is_empty() && (result.len() as u64) < store.record_count(),
        "rework-free instances: {}",
        result.len()
    );

    // Total first-pass latency along the happy path is positive and finite.
    let (agg, _) = store
        .path_aggregate(&PathAggQuery::new(q, AggFn::Sum))
        .unwrap();
    for i in 0..agg.len() {
        let v = agg.row(i)[0];
        assert!(v.is_finite() && v > 0.0);
    }
}

#[test]
fn rework_transitions_are_distinguishable() {
    let mut u = Universe::new();
    let wf = WorkflowScenario::build(&mut u, 4);
    let states = wf.states().to_vec();
    let instances = wf.instances(&mut u, 500, 0.35, 7);
    let store = GraphStore::load(u, &instances);

    // A bounce stage2→stage1 lands on a versioned copy stage1~2 after
    // flattening; query instances that reworked stage 1.
    let u = store.universe();
    let s2 = states[2];
    let s1v = u.find_node("stage1~2").expect("rework creates stage1~2");
    let bounce = u.find_edge(s2, s1v).expect("bounce edge exists");
    let (reworked, _) = store.evaluate(&GraphQuery::from_edges(vec![bounce]));
    assert!(
        !reworked.is_empty() && (reworked.len() as u64) < store.record_count(),
        "some but not all instances rework: {}",
        reworked.len()
    );
}

#[test]
fn ql_over_workflow_universe() {
    let mut u = Universe::new();
    let wf = WorkflowScenario::build(&mut u, 4);
    let instances = wf.instances(&mut u, 200, 0.2, 3);
    let store = GraphStore::load(u, &instances);
    // The base pipeline path matches rework-free instances only.
    match store.query("COUNT [stage0,stage1,stage2,stage3]").unwrap() {
        graphbi::ql::QlAnswer::Aggregates(agg) => {
            assert!(!agg.is_empty() && (agg.len() as u64) < store.record_count());
            assert!(agg.values.iter().all(|&v| v == 3.0));
        }
        other => panic!("unexpected {other:?}"),
    }
    // The query language reaches versioned stage copies by their `~` names.
    match store.query("[stage1~2,stage2~2]").unwrap() {
        graphbi::ql::QlAnswer::Records(r) => {
            assert!(!r.is_empty(), "some instance reworked stage 1 then resumed");
        }
        other => panic!("unexpected {other:?}"),
    }
}
