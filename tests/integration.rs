//! End-to-end: synthetic dataset → column store → queries, validated against
//! a brute-force scan of the raw records.

use graphbi::{AggFn, GraphStore, PathAggQuery, QueryRequest, Session};
use graphbi_graph::{GraphQuery, GraphRecord};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn small_dataset() -> (Dataset, Vec<GraphQuery>) {
    let spec = DatasetSpec {
        n_records: 400,
        ..DatasetSpec::ny(400)
    };
    let d = Dataset::synthesize(&spec);
    let qs = d.queries(&QuerySpec::uniform(30));
    (d, qs)
}

/// Brute force: records containing every query edge.
fn scan_matches(records: &[GraphRecord], q: &GraphQuery) -> Vec<u32> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.contains_all(q.edges()))
        .map(|(i, _)| u32::try_from(i).expect("record id fits u32"))
        .collect()
}

#[test]
fn graph_queries_match_brute_force() {
    let (d, qs) = small_dataset();
    let records = d.records.clone();
    let store = GraphStore::load(d.universe, &d.records);
    let mut total_matches = 0usize;
    for q in &qs {
        let (result, stats) = store.evaluate(q);
        assert_eq!(result.records, scan_matches(&records, q), "{q:?}");
        assert_eq!(stats.bitmap_columns as usize, q.len());
        // Measures agree with the raw records.
        for (i, &rid) in result.records.iter().enumerate() {
            for (j, &e) in result.edges.iter().enumerate() {
                assert_eq!(
                    result.row(i)[j],
                    records[rid as usize].measure(e).expect("edge present"),
                );
            }
        }
        total_matches += result.len();
    }
    assert!(total_matches > 0, "workload should hit some records");
}

#[test]
fn path_aggregation_matches_manual_computation() {
    let (d, qs) = small_dataset();
    let records = d.records.clone();
    let store = GraphStore::load(d.universe, &d.records);
    let mut non_empty = 0;
    for q in qs.iter().take(10) {
        for func in [AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg, AggFn::Count] {
            let paq = PathAggQuery::new(q.clone(), func);
            let (agg, _) = store.path_aggregate(&paq).unwrap();
            assert_eq!(agg.records, scan_matches(&records, q));
            // Single-path queries: one aggregate per record, equal to the
            // fold of the edge measures.
            assert_eq!(agg.path_count, 1);
            for (i, &rid) in agg.records.iter().enumerate() {
                let rec = &records[rid as usize];
                let measures: Vec<f64> = q
                    .edges()
                    .iter()
                    .map(|&e| rec.measure(e).expect("edge present"))
                    .collect();
                let expect = match func {
                    AggFn::Sum => measures.iter().sum::<f64>(),
                    AggFn::Min => measures.iter().copied().fold(f64::INFINITY, f64::min),
                    AggFn::Max => measures.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    AggFn::Count => measures.len() as f64,
                    AggFn::Avg => measures.iter().sum::<f64>() / measures.len() as f64,
                };
                let got = agg.row(i)[0];
                assert!(
                    (got - expect).abs() < 1e-9,
                    "{func}: got {got}, want {expect}"
                );
            }
            non_empty += usize::from(!agg.is_empty());
        }
    }
    assert!(non_empty > 0);
}

#[test]
fn logical_combinators_against_brute_force() {
    use graphbi::QueryExpr;
    let (d, qs) = small_dataset();
    let records = d.records.clone();
    let store = GraphStore::load(d.universe, &d.records);
    let mut stats = graphbi::IoStats::new();
    for pair in qs.chunks(2).take(8) {
        let [a, b] = pair else { continue };
        let sa: std::collections::BTreeSet<u32> = scan_matches(&records, a).into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = scan_matches(&records, b).into_iter().collect();
        let and = store.evaluate_expr(
            &QueryExpr::and(a.clone().into(), b.clone().into()),
            &mut stats,
        );
        let or = store.evaluate_expr(
            &QueryExpr::or(a.clone().into(), b.clone().into()),
            &mut stats,
        );
        let not = store.evaluate_expr(
            &QueryExpr::and_not(a.clone().into(), b.clone().into()),
            &mut stats,
        );
        assert_eq!(
            and.to_vec(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(or.to_vec(), sa.union(&sb).copied().collect::<Vec<_>>());
        assert_eq!(
            not.to_vec(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
    }
}

#[test]
fn partition_width_does_not_change_answers() {
    let spec = DatasetSpec {
        n_records: 400,
        ..DatasetSpec::ny(400)
    };
    let d1 = Dataset::synthesize(&spec);
    let d2 = Dataset::synthesize(&spec);
    let qs = d1.queries(&QuerySpec::uniform(30));
    let wide = GraphStore::load_with_width(d1.universe, &d1.records, 1000);
    let narrow = GraphStore::load_with_width(d2.universe, &d2.records, 37);
    assert!(narrow.relation().partition_count() > wide.relation().partition_count());
    for q in &qs {
        let (r1, _) = wide.evaluate(q);
        let (r2, s2) = narrow.evaluate(q);
        assert_eq!(r1, r2);
        if !r2.is_empty() && q.len() > 1 {
            assert!(s2.partitions_touched >= 1);
        }
    }
}

#[test]
fn oblivious_and_default_agree_without_views() {
    let (d, qs) = small_dataset();
    let store = GraphStore::load(d.universe, &d.records);
    for q in &qs {
        let (r1, s1) = store.evaluate(q);
        let (r2, s2) = store
            .execute(&QueryRequest::new(q.clone()).oblivious())
            .unwrap();
        let r2 = r2.into_records().unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2, "no views exist, costs must be identical");
    }
}

#[test]
fn table2_style_statistics_are_reported() {
    let (d, _) = small_dataset();
    let n = d.records.len() as u64;
    let measures = d.total_measures();
    let avg = d.avg_edges_per_record();
    let store = GraphStore::load(d.universe, &d.records);
    assert_eq!(store.record_count(), n);
    assert_eq!(store.relation().total_measures(), measures);
    assert!((35.0..=100.0).contains(&avg));
    assert_eq!(store.relation().edge_count(), 1000);
    assert!(store.size_in_bytes() > 0);
}
