//! Views end-to-end: materialization must never change answers, and the
//! cost model must improve the way §5 promises.

use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryRequest, Session};
use graphbi_graph::GraphQuery;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn setup(seed_offset: u64, zipf: bool) -> (GraphStore, Vec<GraphQuery>) {
    let spec = DatasetSpec {
        n_records: 500,
        ..DatasetSpec::ny(500)
    };
    let d = Dataset::synthesize(&spec);
    let mut qspec = if zipf {
        QuerySpec::zipf(40)
    } else {
        QuerySpec::uniform(40)
    };
    qspec.seed ^= seed_offset;
    let qs = d.queries(&qspec);
    (GraphStore::load(d.universe, &d.records), qs)
}

fn workload_bitmap_cost(store: &GraphStore, qs: &[GraphQuery]) -> u64 {
    let mut total = IoStats::new();
    for q in qs {
        let (_, s) = store.evaluate(q);
        total.merge(&s);
    }
    total.structural_columns()
}

#[test]
fn graph_views_never_change_answers_across_budgets() {
    let (mut store, qs) = setup(1, false);
    let baseline: Vec<_> = qs.iter().map(|q| store.evaluate(q).0).collect();
    for budget in [1usize, 5, 10, 40] {
        store.clear_views();
        store.advise_views(&qs, budget);
        assert!(store.graph_views().len() <= budget);
        for (q, expect) in qs.iter().zip(&baseline) {
            let (got, _) = store.evaluate(q);
            assert_eq!(&got, expect, "budget {budget}");
        }
    }
}

#[test]
fn bitmap_cost_decreases_monotonically_with_budget() {
    let (mut store, qs) = setup(2, true);
    let mut last = u64::MAX;
    for budget in [0usize, 2, 5, 10, 20, 40] {
        store.clear_views();
        store.advise_views(&qs, budget);
        let cost = workload_bitmap_cost(&store, &qs);
        assert!(
            cost <= last,
            "budget {budget}: cost {cost} > previous {last}"
        );
        last = cost;
    }
    // Full budget on a skewed workload must actually save something.
    let oblivious: u64 = qs.iter().map(|q| q.len() as u64).sum();
    assert!(
        last < oblivious,
        "views saved nothing: {last} vs {oblivious}"
    );
}

#[test]
fn zipf_workloads_benefit_more_than_uniform() {
    let (mut uni_store, uni_qs) = setup(3, false);
    let (mut zipf_store, zipf_qs) = setup(3, true);
    let budget = 10;
    let uni_before = workload_bitmap_cost(&uni_store, &uni_qs);
    uni_store.advise_views(&uni_qs, budget);
    let uni_after = workload_bitmap_cost(&uni_store, &uni_qs);
    let zipf_before = workload_bitmap_cost(&zipf_store, &zipf_qs);
    zipf_store.advise_views(&zipf_qs, budget);
    let zipf_after = workload_bitmap_cost(&zipf_store, &zipf_qs);
    let uni_ratio = uni_after as f64 / uni_before as f64;
    let zipf_ratio = zipf_after as f64 / zipf_before as f64;
    assert!(
        zipf_ratio < uni_ratio,
        "zipf {zipf_ratio:.3} should beat uniform {uni_ratio:.3} (Figure 8)"
    );
}

#[test]
fn aggregate_views_preserve_answers_and_cut_measure_fetches() {
    let (mut store, qs) = setup(4, true);
    let func = AggFn::Sum;
    let baseline: Vec<_> = qs
        .iter()
        .map(|q| {
            store
                .path_aggregate(&PathAggQuery::new(q.clone(), func))
                .unwrap()
                .0
        })
        .collect();
    let n = store.advise_agg_views(&qs, func, 40).unwrap();
    assert!(
        n > 0,
        "advisor should find aggregate views on a zipf workload"
    );

    let mut with_views = IoStats::new();
    let mut oblivious = IoStats::new();
    for (q, expect) in qs.iter().zip(&baseline) {
        let paq = PathAggQuery::new(q.clone(), func);
        let (got, s) = store.path_aggregate(&paq).unwrap();
        assert_eq!(&got, expect);
        with_views.merge(&s);
        let (_, s2) = store
            .execute(&QueryRequest::aggregate(paq.clone()).oblivious())
            .unwrap();
        oblivious.merge(&s2);
    }
    assert!(
        with_views.measure_columns + with_views.agg_view_columns < oblivious.measure_columns,
        "aggregate views should replace several measure columns with one: \
         {with_views:?} vs {oblivious:?}"
    );
    assert!(with_views.values_fetched <= oblivious.values_fetched);
}

#[test]
fn avg_and_count_compose_from_sum_views() {
    let (mut store, qs) = setup(5, true);
    // Materialize SUM-kind views; AVG and COUNT queries must still be exact.
    store.advise_agg_views(&qs, AggFn::Sum, 20).unwrap();
    for q in qs.iter().take(10) {
        for func in [AggFn::Avg, AggFn::Count] {
            let paq = PathAggQuery::new(q.clone(), func);
            let (with, s_with) = store.path_aggregate(&paq).unwrap();
            let without = store
                .execute(&QueryRequest::aggregate(paq.clone()).oblivious())
                .unwrap()
                .0
                .into_aggregates()
                .unwrap();
            for (a, b) in with.values.iter().zip(&without.values) {
                assert!(
                    (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()),
                    "{func}: {a} vs {b}"
                );
            }
            let _ = s_with;
        }
    }
}

#[test]
fn min_views_do_not_serve_sum_queries() {
    let (mut store, qs) = setup(6, false);
    store.advise_agg_views(&qs, AggFn::Min, 20).unwrap();
    // SUM queries must ignore MIN-kind views (and still be correct).
    for q in qs.iter().take(10) {
        let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
        let (with, stats) = store.path_aggregate(&paq).unwrap();
        let without = store
            .execute(&QueryRequest::aggregate(paq.clone()).oblivious())
            .unwrap()
            .0
            .into_aggregates()
            .unwrap();
        assert_eq!(with, without);
        assert_eq!(stats.agg_view_columns, 0, "MIN views must not serve SUM");
    }
}

#[test]
fn fragments_and_views_combine_in_one_catalog() {
    // §7.3's closing note: "we also tested combining both gIndex and the
    // views on the same query". Fragments are just data-mined graph views;
    // a mixed catalog must stay transparent and never cost more than the
    // advisor's views alone.
    let (mut store, qs) = setup(8, true);
    let baseline: Vec<_> = qs.iter().map(|q| store.evaluate(q).0).collect();

    // Advisor views first.
    store.advise_views(&qs, 10);
    let views_cost = workload_bitmap_cost(&store, &qs);

    // Add "fragments": arbitrary 2-edge subsets of some queries, as gIndex
    // would have mined them from record samples.
    let fragments: Vec<Vec<graphbi::EdgeId>> = qs
        .iter()
        .filter(|q| q.len() >= 2)
        .take(10)
        .map(|q| q.edges()[..2].to_vec())
        .collect();
    for f in fragments {
        store.materialize_graph_view(f);
    }
    let mixed_cost = workload_bitmap_cost(&store, &qs);
    assert!(
        mixed_cost <= views_cost,
        "adding fragments must never raise the model cost: {mixed_cost} > {views_cost}"
    );
    for (q, expect) in qs.iter().zip(&baseline) {
        assert_eq!(&store.evaluate(q).0, expect);
    }
}

#[test]
fn space_overhead_is_modest() {
    let (mut store, qs) = setup(7, false);
    let base = store.size_in_bytes();
    store.advise_views(&qs, qs.len());
    store.advise_agg_views(&qs, AggFn::Sum, qs.len()).unwrap();
    let with_views = store.size_in_bytes();
    // The paper reports ~10% overhead for a full budget; allow 2× headroom
    // on tiny datasets where fixed costs dominate.
    assert!(
        with_views - base < base / 5 + 4096,
        "views cost {} on a base of {base}",
        with_views - base
    );
}
