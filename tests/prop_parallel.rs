//! Property tests for the parallel work-queue executor and the disk cache
//! counters: ordering and panic-freedom for arbitrary `(n, threads)`
//! shapes, including degenerate ones (`threads > n`, `threads == 0`).

use std::sync::atomic::{AtomicUsize, Ordering};

use graphbi::parallel::run_indexed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Results come back in index order regardless of which thread ran
    /// which index, and every index runs exactly once.
    #[test]
    fn run_indexed_preserves_order(n in 0usize..200, threads in 0usize..16) {
        let calls = AtomicUsize::new(0);
        let out = run_indexed(n, threads, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 3 + 1
        });
        prop_assert_eq!(out, (0..n).map(|i| i * 3 + 1).collect::<Vec<_>>());
        prop_assert_eq!(calls.into_inner(), n);
    }

    /// More threads than work items must neither deadlock nor duplicate
    /// work.
    #[test]
    fn run_indexed_oversubscribed(n in 0usize..4, extra in 1usize..32) {
        let threads = n + extra;
        let out = run_indexed(n, threads, |i| i);
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    /// Non-trivial payloads survive the slot round-trip (the executor moves
    /// results through a mutex-guarded `Vec<Option<T>>`).
    #[test]
    fn run_indexed_owns_heap_payloads(n in 1usize..64, threads in 1usize..8) {
        let out = run_indexed(n, threads, |i| vec![i as u64; i % 5]);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(v.len(), i % 5);
            prop_assert!(v.iter().all(|&x| x == i as u64));
        }
    }
}

/// A panicking task aborts the scope rather than returning torn results.
#[test]
fn run_indexed_propagates_panics() {
    let res = std::panic::catch_unwind(|| {
        run_indexed(8, 4, |i| {
            if i == 5 {
                panic!("task failure");
            }
            i
        })
    });
    assert!(
        res.is_err(),
        "panic inside a task must propagate to the caller"
    );
}
