//! Batched readers racing a maintenance writer on a [`SharedStore`].
//!
//! The paper's deployments ingest records "on a continuous basis" while
//! analysts run reporting workloads. Here N reader threads issue *batched*
//! sharded queries through [`Session::evaluate_many`] while one writer
//! appends records and materializes views. The store promises each batch a
//! single consistent snapshot (one read lock for the whole batch), so:
//!
//! * every answer inside a batch must describe the same record count —
//!   a writer's append can never land between two requests of one batch;
//! * successive batches see monotonically non-decreasing match sets;
//! * after the writer finishes, every engine answer equals a serial
//!   reference evaluation.

use graphbi::{
    AggFn, GraphQuery, GraphStore, PathAggQuery, QueryRequest, Response, Session, SharedStore,
};
use graphbi_graph::{EdgeId, RecordBuilder, Universe};

const READERS: usize = 4;
const BATCHES_PER_READER: usize = 40;
const APPENDS: usize = 120;

fn seed_store() -> (SharedStore, Vec<EdgeId>) {
    let mut u = Universe::new();
    let edges: Vec<EdgeId> = (0..5)
        .map(|i| u.edge_by_names(&format!("s{i}"), &format!("s{}", i + 1)))
        .collect();
    let mut records = Vec::new();
    for r in 0..300u32 {
        let mut b = RecordBuilder::new();
        for (i, &e) in edges.iter().enumerate() {
            if !(r as usize + i).is_multiple_of(4) {
                b.add(e, f64::from(r % 17) + 1.0);
            }
        }
        records.push(b.build());
    }
    (SharedStore::new(GraphStore::load(u, &records)), edges)
}

/// One reader batch: the full path query, a sub-path, the full path as an
/// aggregation — all sharded, answered under one snapshot.
fn batch(edges: &[EdgeId]) -> Vec<QueryRequest> {
    let full = GraphQuery::from_edges(vec![edges[0], edges[1]]);
    let sub = GraphQuery::from_edges(vec![edges[0]]);
    vec![
        QueryRequest::new(full.clone()).shards(3),
        QueryRequest::new(sub).shards(3),
        QueryRequest::aggregate(PathAggQuery::new(full, AggFn::Sum)).shards(3),
    ]
}

/// Match counts of one batch answer:
/// (full-path records, sub-path records, aggregated records).
fn counts(answers: &[(Response, graphbi::IoStats)]) -> (usize, usize, usize) {
    let full = match &answers[0].0 {
        Response::Records(r) => r.len(),
        other => panic!("expected records, got {other:?}"),
    };
    let sub = match &answers[1].0 {
        Response::Records(r) => r.len(),
        other => panic!("expected records, got {other:?}"),
    };
    let agg = match &answers[2].0 {
        Response::Aggregates(a) => a.len(),
        other => panic!("expected aggregates, got {other:?}"),
    };
    (full, sub, agg)
}

#[test]
fn batched_readers_race_one_writer() {
    let (store, edges) = seed_store();
    let requests = batch(&edges);

    // Serial reference for the initial snapshot.
    let initial = counts(&store.evaluate_many(&requests).expect("seed batch"));

    std::thread::scope(|scope| {
        // Writer: append records (every one matching the full path) and
        // periodically run the view advisor, both under the write lock.
        {
            let store = store.clone();
            let edges = edges.clone();
            scope.spawn(move || {
                let workload = vec![GraphQuery::from_edges(vec![edges[0], edges[1]])];
                for i in 0..APPENDS {
                    let mut b = RecordBuilder::new();
                    b.add(edges[0], 2.0)
                        .add(edges[1], f64::from(i as u32) + 1.0);
                    store.append_record(&b.build());
                    if i % 40 == 20 {
                        store.advise_views(&workload, 2);
                    }
                }
            });
        }

        // Readers: batched sharded queries, checking snapshot consistency
        // and monotonicity.
        for _ in 0..READERS {
            let store = store.clone();
            let requests = requests.clone();
            scope.spawn(move || {
                let (mut last_full, mut last_sub, mut last_agg) = (0usize, 0usize, 0usize);
                for _ in 0..BATCHES_PER_READER {
                    let answers = store.evaluate_many(&requests).expect("reader batch");
                    let (full, sub, agg) = counts(&answers);
                    // One snapshot: the aggregation runs the same structural
                    // match as the full-path query, and every appended record
                    // contains both path edges and the sub-path edge — so
                    // within one batch the counts must be mutually consistent.
                    assert_eq!(
                        full, agg,
                        "full-path query and its aggregation disagree within one batch"
                    );
                    assert!(
                        sub >= full,
                        "sub-path matches ({sub}) fewer than full path ({full}) in one snapshot"
                    );
                    // Across batches: append-only ingest means match sets
                    // only grow.
                    assert!(full >= last_full, "full-path went backwards");
                    assert!(sub >= last_sub, "sub-path went backwards");
                    assert!(agg >= last_agg, "aggregation went backwards");
                    (last_full, last_sub, last_agg) = (full, sub, agg);
                }
            });
        }
    });

    // Quiesced: batched answers equal a serial reference evaluation.
    let final_batch = store.evaluate_many(&requests).expect("final batch");
    let (full, sub, agg) = counts(&final_batch);
    assert_eq!(full, initial.0 + APPENDS);
    assert_eq!(sub, initial.1 + APPENDS);
    assert_eq!(agg, initial.2 + APPENDS);
    let serial: Vec<_> = requests
        .iter()
        .map(|r| {
            let serial_req = r.clone().shards(1);
            store.execute(&serial_req).expect("serial reference")
        })
        .collect();
    for ((batched, batched_stats), (expected, expected_stats)) in final_batch.iter().zip(&serial) {
        assert_eq!(batched, expected, "batched answer differs from serial");
        assert_eq!(
            batched_stats, expected_stats,
            "batched stats differ from serial"
        );
    }
}
