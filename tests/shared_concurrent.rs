//! Batched readers racing a maintenance writer on a [`SharedStore`].
//!
//! The paper's deployments ingest records "on a continuous basis" while
//! analysts run reporting workloads. Here N reader threads issue *batched*
//! sharded queries through [`Session::evaluate_many`] while one writer
//! appends records and materializes views. The store promises each batch a
//! single consistent snapshot (one read lock for the whole batch), so:
//!
//! * every answer inside a batch must describe the same record count —
//!   a writer's append can never land between two requests of one batch;
//! * successive batches see monotonically non-decreasing match sets;
//! * after the writer finishes, every engine answer equals a serial
//!   reference evaluation.
//!
//! The second half tortures [`MvccStore`] snapshot isolation: readers pin
//! snapshots while a writer commits delta batches and a compactor folds
//! them into fresh bases, and every pinned answer must be bit-identical
//! to a serial replay of exactly the pinned epoch — plus a disk flavor
//! proving generation pinning keeps superseded files alive under GC for
//! exactly as long as a snapshot reads them.

use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::save_store_with;
use graphbi::{
    AggFn, GraphQuery, GraphStore, MvccStore, PathAggQuery, QueryExpr, QueryRequest, Response,
    Session, SharedStore,
};
use graphbi_columnstore::{DeltaOp, FaultVfs, Verify, Vfs};
use graphbi_graph::{EdgeId, GraphRecord, RecordBuilder, Universe};

const READERS: usize = 4;
const BATCHES_PER_READER: usize = 40;
const APPENDS: usize = 120;

fn seed_store() -> (SharedStore, Vec<EdgeId>) {
    let mut u = Universe::new();
    let edges: Vec<EdgeId> = (0..5)
        .map(|i| u.edge_by_names(&format!("s{i}"), &format!("s{}", i + 1)))
        .collect();
    let mut records = Vec::new();
    for r in 0..300u32 {
        let mut b = RecordBuilder::new();
        for (i, &e) in edges.iter().enumerate() {
            if !(r as usize + i).is_multiple_of(4) {
                b.add(e, f64::from(r % 17) + 1.0);
            }
        }
        records.push(b.build());
    }
    (SharedStore::new(GraphStore::load(u, &records)), edges)
}

/// One reader batch: the full path query, a sub-path, the full path as an
/// aggregation — all sharded, answered under one snapshot.
fn batch(edges: &[EdgeId]) -> Vec<QueryRequest> {
    let full = GraphQuery::from_edges(vec![edges[0], edges[1]]);
    let sub = GraphQuery::from_edges(vec![edges[0]]);
    vec![
        QueryRequest::new(full.clone()).shards(3),
        QueryRequest::new(sub).shards(3),
        QueryRequest::aggregate(PathAggQuery::new(full, AggFn::Sum)).shards(3),
    ]
}

/// Match counts of one batch answer:
/// (full-path records, sub-path records, aggregated records).
fn counts(answers: &[(Response, graphbi::IoStats)]) -> (usize, usize, usize) {
    let full = match &answers[0].0 {
        Response::Records(r) => r.len(),
        other => panic!("expected records, got {other:?}"),
    };
    let sub = match &answers[1].0 {
        Response::Records(r) => r.len(),
        other => panic!("expected records, got {other:?}"),
    };
    let agg = match &answers[2].0 {
        Response::Aggregates(a) => a.len(),
        other => panic!("expected aggregates, got {other:?}"),
    };
    (full, sub, agg)
}

#[test]
fn batched_readers_race_one_writer() {
    let (store, edges) = seed_store();
    let requests = batch(&edges);

    // Serial reference for the initial snapshot.
    let initial = counts(&store.evaluate_many(&requests).expect("seed batch"));

    std::thread::scope(|scope| {
        // Writer: append records (every one matching the full path) and
        // periodically run the view advisor, both under the write lock.
        {
            let store = store.clone();
            let edges = edges.clone();
            scope.spawn(move || {
                let workload = vec![GraphQuery::from_edges(vec![edges[0], edges[1]])];
                for i in 0..APPENDS {
                    let mut b = RecordBuilder::new();
                    b.add(edges[0], 2.0)
                        .add(edges[1], f64::from(i as u32) + 1.0);
                    store.append_record(&b.build());
                    if i % 40 == 20 {
                        store.advise_views(&workload, 2);
                    }
                }
            });
        }

        // Readers: batched sharded queries, checking snapshot consistency
        // and monotonicity.
        for _ in 0..READERS {
            let store = store.clone();
            let requests = requests.clone();
            scope.spawn(move || {
                let (mut last_full, mut last_sub, mut last_agg) = (0usize, 0usize, 0usize);
                for _ in 0..BATCHES_PER_READER {
                    let answers = store.evaluate_many(&requests).expect("reader batch");
                    let (full, sub, agg) = counts(&answers);
                    // One snapshot: the aggregation runs the same structural
                    // match as the full-path query, and every appended record
                    // contains both path edges and the sub-path edge — so
                    // within one batch the counts must be mutually consistent.
                    assert_eq!(
                        full, agg,
                        "full-path query and its aggregation disagree within one batch"
                    );
                    assert!(
                        sub >= full,
                        "sub-path matches ({sub}) fewer than full path ({full}) in one snapshot"
                    );
                    // Across batches: append-only ingest means match sets
                    // only grow.
                    assert!(full >= last_full, "full-path went backwards");
                    assert!(sub >= last_sub, "sub-path went backwards");
                    assert!(agg >= last_agg, "aggregation went backwards");
                    (last_full, last_sub, last_agg) = (full, sub, agg);
                }
            });
        }
    });

    // Quiesced: batched answers equal a serial reference evaluation.
    let final_batch = store.evaluate_many(&requests).expect("final batch");
    let (full, sub, agg) = counts(&final_batch);
    assert_eq!(full, initial.0 + APPENDS);
    assert_eq!(sub, initial.1 + APPENDS);
    assert_eq!(agg, initial.2 + APPENDS);
    let serial: Vec<_> = requests
        .iter()
        .map(|r| {
            let serial_req = r.clone().shards(1);
            store.execute(&serial_req).expect("serial reference")
        })
        .collect();
    for ((batched, batched_stats), (expected, expected_stats)) in final_batch.iter().zip(&serial) {
        assert_eq!(batched, expected, "batched answer differs from serial");
        assert_eq!(
            batched_stats, expected_stats,
            "batched stats differ from serial"
        );
    }
}

// ---------------------------------------------------------------------------
// MVCC snapshot-isolation torture: readers pinned to snapshots race an
// appending writer and a compactor, and every answer must be bit-identical
// to a serial replay of exactly the epoch the snapshot pinned.
// ---------------------------------------------------------------------------

const MVCC_BASE: usize = 120;
const MVCC_COMMITS: usize = 60;
const MVCC_READERS: usize = 4;
const MVCC_READS_PER_READER: usize = 30;

fn mvcc_universe() -> (Universe, Vec<EdgeId>) {
    let mut u = Universe::new();
    let edges: Vec<EdgeId> = (0..4)
        .map(|i| u.edge_by_names(&format!("m{i}"), &format!("m{}", i + 1)))
        .collect();
    (u, edges)
}

fn mvcc_base_records(edges: &[EdgeId]) -> Vec<GraphRecord> {
    (0..MVCC_BASE as u32)
        .map(|r| {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if !(r as usize + i).is_multiple_of(3) {
                    b.add(e, f64::from(r % 13) + 1.0);
                }
            }
            b.build()
        })
        .collect()
}

/// The deterministic ops of commit `k` (committed at epoch `k + 1`): one
/// insert matching the full path, plus — every third commit — an update
/// that *replaces* a base record with a single-edge one, so updates both
/// retire rows from some match sets and add them to others.
fn mvcc_commit_ops(k: usize, edges: &[EdgeId]) -> Vec<DeltaOp> {
    let mut ops = Vec::new();
    let mut b = RecordBuilder::new();
    b.add(edges[0], f64::from(k as u32) + 0.5)
        .add(edges[1], 2.0 * f64::from(k as u32) + 1.0);
    ops.push(DeltaOp::Insert(b.build()));
    if k.is_multiple_of(3) {
        let rid = (k * 7) % MVCC_BASE;
        let mut u = RecordBuilder::new();
        u.add(edges[2], f64::from(rid as u32) + 3.0);
        ops.push(DeltaOp::Update(rid as u32, u.build()));
    }
    ops
}

/// Serial replay: the records visible at `epoch`, as a plain vector.
fn mvcc_expected_records(epoch: u64, edges: &[EdgeId]) -> Vec<GraphRecord> {
    let mut recs = mvcc_base_records(edges);
    for k in 0..epoch as usize {
        for op in mvcc_commit_ops(k, edges) {
            match op {
                DeltaOp::Insert(r) => recs.push(r),
                DeltaOp::Update(rid, r) => recs[rid as usize] = r,
            }
        }
    }
    recs
}

/// The snapshot workload: one request of every kind, including an ANDNOT
/// whose right side is exactly what the updates rewrite records into.
fn mvcc_requests(edges: &[EdgeId]) -> Vec<QueryRequest> {
    let full = GraphQuery::from_edges(vec![edges[0], edges[1]]);
    let e2 = GraphQuery::from_edges(vec![edges[2]]);
    vec![
        QueryRequest::new(full.clone()),
        QueryRequest::expr(QueryExpr::and_not(
            QueryExpr::Atom(GraphQuery::from_edges(vec![edges[0]])),
            QueryExpr::Atom(e2),
        )),
        QueryRequest::aggregate(PathAggQuery::new(full, AggFn::Sum)),
    ]
}

#[test]
fn snapshot_readers_race_writer_and_compactor() {
    let (universe, edges) = mvcc_universe();
    let store = Arc::new(MvccStore::new_mem(GraphStore::load(
        universe.clone(),
        &mvcc_base_records(&edges),
    )));
    let requests = mvcc_requests(&edges);

    std::thread::scope(|scope| {
        // Writer: the deterministic commit stream, epoch k+1 = commit k.
        {
            let store = Arc::clone(&store);
            let edges = edges.clone();
            scope.spawn(move || {
                for k in 0..MVCC_COMMITS {
                    let epoch = store.commit(&mvcc_commit_ops(k, &edges)).expect("commit");
                    assert_eq!(epoch, (k + 1) as u64, "epochs must be dense");
                }
            });
        }
        // Compactor: folds the delta into a fresh base over and over while
        // both the writer and the readers are live.
        {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..8 {
                    store.compact().expect("compact");
                    std::thread::yield_now();
                }
            });
        }
        // Readers: pin a snapshot, read its epoch, and demand every answer
        // is bit-identical to a store built by serially replaying exactly
        // that many commits — no matter what the writer and compactor do
        // meanwhile.
        for _ in 0..MVCC_READERS {
            let store = Arc::clone(&store);
            let universe = universe.clone();
            let edges = edges.clone();
            let requests = requests.clone();
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..MVCC_READS_PER_READER {
                    let snap = store.snapshot();
                    let epoch = snap.epoch();
                    assert!(epoch >= last_epoch, "snapshots went back in time");
                    last_epoch = epoch;
                    let expected_records = mvcc_expected_records(epoch, &edges);
                    assert_eq!(snap.record_count(), expected_records.len() as u64);
                    let reference = GraphStore::load(universe.clone(), &expected_records);
                    let got = snap.evaluate_many(&requests).expect("snapshot batch");
                    let want = reference.evaluate_many(&requests).expect("serial replay");
                    for (i, ((g, _), (w, _))) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g, w,
                            "request[{i}] at epoch {epoch} differs from serial replay"
                        );
                    }
                }
            });
        }
    });

    // Quiesced: the full stream, compacted once more, still replays.
    store.compact().expect("final compact");
    let expected_records = mvcc_expected_records(MVCC_COMMITS as u64, &edges);
    let reference = GraphStore::load(universe, &expected_records);
    let got = store.evaluate_many(&requests).expect("final batch");
    let want = reference.evaluate_many(&requests).expect("final replay");
    for ((g, _), (w, _)) in got.iter().zip(&want) {
        assert_eq!(g, w, "quiesced answers differ from serial replay");
    }
}

/// Disk flavor: a snapshot pinned *before* a compaction keeps answering
/// from its superseded generation even after the compactor publishes a new
/// one and the garbage collector sweeps — generation pinning must spare
/// the files a live snapshot reads. Dropping the pin releases them.
#[test]
fn pinned_disk_snapshot_survives_compaction_and_gc() {
    let (universe, edges) = mvcc_universe();
    let vfs = Arc::new(FaultVfs::new(0x9147));
    let dir = PathBuf::from("/mvccpin");
    save_store_with(
        vfs.as_ref(),
        &GraphStore::load(universe.clone(), &mvcc_base_records(&edges)),
        &dir,
    )
    .expect("save base generation");
    let store =
        MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums).expect("open mvcc");
    let requests = mvcc_requests(&edges);

    // Pin the pre-commit state, then move the store two commits and a
    // compaction ahead.
    let pinned = store.snapshot();
    let pinned_gen = pinned.generation();
    // Responses only: IoStats legitimately differ between a cold and a
    // warm column cache.
    let responses = |answers: Vec<(Response, graphbi::IoStats)>| -> Vec<Response> {
        answers.into_iter().map(|(r, _)| r).collect()
    };
    let before = responses(pinned.evaluate_many(&requests).expect("pinned batch"));
    for k in 0..2 {
        store.commit(&mvcc_commit_ops(k, &edges)).expect("commit");
    }
    store.compact().expect("compact");
    store.gc().expect("gc with a live pin");
    assert_ne!(store.generation(), pinned_gen, "compaction must republish");

    // The pinned generation's files must still be on disk…
    let old_prefix = format!("g{pinned_gen:012}-");
    let files = vfs.list(&dir).expect("list store dir");
    assert!(
        files.iter().any(|p| p
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(&old_prefix))),
        "gc removed files of a pinned generation"
    );
    // …and the pinned snapshot must answer exactly as before the
    // compaction, while fresh snapshots see the commits.
    let after = responses(
        pinned
            .evaluate_many(&requests)
            .expect("pinned batch after gc"),
    );
    assert_eq!(
        before, after,
        "pinned snapshot changed across compaction+gc"
    );
    let expected_records = mvcc_expected_records(2, &edges);
    let reference = GraphStore::load(universe, &expected_records);
    let fresh = store.evaluate_many(&requests).expect("fresh batch");
    let want = reference.evaluate_many(&requests).expect("serial replay");
    for ((g, _), (w, _)) in fresh.iter().zip(&want) {
        assert_eq!(g, w, "post-compaction answers differ from serial replay");
    }

    // Dropping the pin frees the old generation for the next sweep.
    drop(pinned);
    store.gc().expect("gc after pin release");
    let files = vfs.list(&dir).expect("list store dir");
    assert!(
        !files.iter().any(|p| p
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(&old_prefix))),
        "unpinned superseded generation was not collected"
    );
}
