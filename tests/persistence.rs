//! Persistence: a relation saved to disk and reloaded must answer queries
//! identically.

use graphbi::GraphStore;
use graphbi_columnstore::persist;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("graphbi-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn save_load_round_trip_preserves_query_answers() {
    let spec = DatasetSpec {
        n_records: 300,
        ..DatasetSpec::ny(300)
    };
    let d = Dataset::synthesize(&spec);
    let d2 = Dataset::synthesize(&spec);
    let qs = d.queries(&QuerySpec::uniform(20));
    let store = GraphStore::load(d.universe, &d.records);

    let dir = tmpdir("roundtrip");
    let written = persist::save(store.relation(), &dir).unwrap();
    assert!(written > 0);
    assert_eq!(persist::disk_size(&dir).unwrap(), written);

    let relation = persist::load(&dir).unwrap();
    let reloaded = GraphStore::from_relation(d2.universe, relation);
    assert_eq!(reloaded.record_count(), store.record_count());
    for q in &qs {
        assert_eq!(reloaded.evaluate(q).0, store.evaluate(q).0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_footprint_tracks_density_weakly() {
    // Figure 4's column-store property: on-disk size is driven by the
    // number of *measures*, not by the declared edge universe.
    let sparse_spec = DatasetSpec {
        n_records: 200,
        min_edges: 20,
        max_edges: 30,
        ..DatasetSpec::ny(200)
    };
    let dense_spec = DatasetSpec {
        n_records: 200,
        min_edges: 80,
        max_edges: 100,
        ..DatasetSpec::ny(200)
    };
    let sparse = Dataset::synthesize(&sparse_spec);
    let dense = Dataset::synthesize(&dense_spec);
    let s_store = GraphStore::load(sparse.universe, &sparse.records);
    let d_store = GraphStore::load(dense.universe, &dense.records);

    let sd = tmpdir("sparse");
    let dd = tmpdir("dense");
    let s_bytes = persist::save(s_store.relation(), &sd).unwrap();
    let d_bytes = persist::save(d_store.relation(), &dd).unwrap();
    // More measures → more bytes, roughly proportionally (both directions
    // bounded), confirming NULLs occupy no space.
    let ratio = d_bytes as f64 / s_bytes as f64;
    let measure_ratio =
        d_store.relation().total_measures() as f64 / s_store.relation().total_measures() as f64;
    assert!(
        ratio < measure_ratio * 1.5 && ratio > measure_ratio * 0.5,
        "disk ratio {ratio:.2} vs measure ratio {measure_ratio:.2}"
    );
    std::fs::remove_dir_all(&sd).unwrap();
    std::fs::remove_dir_all(&dd).unwrap();
}
