//! Cross-engine equivalence: the column store and all three baseline
//! systems must return bit-identical answers to every query — the paper's
//! comparisons are only meaningful because the systems compute the same
//! thing.

use graphbi::GraphStore;
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};
use graphbi_graph::QueryResult;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn workload() -> (Dataset, Vec<graphbi_graph::GraphQuery>) {
    let spec = DatasetSpec {
        n_records: 300,
        ..DatasetSpec::gnu(300)
    };
    let d = Dataset::synthesize(&spec);
    let mut qs = d.queries(&QuerySpec::uniform(25));
    qs.extend(d.queries(&QuerySpec::zipf(25)));
    (d, qs)
}

#[test]
fn all_four_engines_agree() {
    let (d, qs) = workload();
    let row = RowStore::load(&d.records);
    let rdf = RdfStore::load(&d.records);
    let graph = GraphDb::load(&d.records, &d.universe);
    let records = d.records.clone();
    let store = GraphStore::load(d.universe, &d.records);

    let mut non_empty = 0usize;
    for q in &qs {
        let (column_result, _) = store.evaluate(q);
        for engine in [&row as &dyn Engine, &rdf, &graph] {
            let r: QueryResult = engine.evaluate(q);
            assert_eq!(
                r,
                column_result,
                "{} disagrees with column store on {q:?}",
                engine.name()
            );
        }
        non_empty += usize::from(!column_result.is_empty());
    }
    assert!(
        non_empty >= qs.len() / 4,
        "workload too selective to be a meaningful test: {non_empty}/{}",
        qs.len()
    );
    // Sanity on the raw data path too.
    assert_eq!(row.record_count(), records.len() as u64);
}

#[test]
fn engines_agree_after_views_are_added() {
    let (d, qs) = workload();
    let row = RowStore::load(&d.records);
    let mut store = GraphStore::load(d.universe, &d.records);
    store.advise_views(&qs, qs.len());
    for q in &qs {
        let (column_result, _) = store.evaluate(q);
        assert_eq!(row.evaluate(q), column_result);
    }
}

#[test]
fn disk_size_ordering_matches_figure4() {
    let (d, _) = workload();
    let row = RowStore::load(&d.records);
    let rdf = RdfStore::load(&d.records);
    let graph = GraphDb::load(&d.records, &d.universe);
    let store = GraphStore::load(d.universe, &d.records);
    // Figure 4: the column store is the smallest, the native graph store the
    // largest.
    assert!(store.size_in_bytes() < row.size_in_bytes());
    assert!(store.size_in_bytes() < rdf.size_in_bytes());
    assert!(graph.size_in_bytes() > row.size_in_bytes());
}
