//! The query language against the engine: answers must match the
//! programmatic API exactly, on the paper's own motivating queries.

use graphbi::ql::QlAnswer;
use graphbi::{AggFn, GraphStore, PathAggQuery};
use graphbi_graph::{GraphQuery, RecordBuilder, Universe};

/// The Figure 1 SCM scenario: orders routed through hubs.
fn scm_store() -> GraphStore {
    let mut u = Universe::new();
    let edges: Vec<_> = [
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
        ("A", "B"),
        ("B", "F"),
        ("F", "J"),
        ("J", "K"),
        ("C", "H"),
        ("H", "K"),
    ]
    .iter()
    .map(|(s, t)| u.edge_by_names(s, t))
    .collect();
    let mut records = Vec::new();
    // Order 0: main corridor.
    let mut r = RecordBuilder::new();
    r.add(edges[0], 2.0)
        .add(edges[1], 1.5)
        .add(edges[2], 2.5)
        .add(edges[3], 1.0);
    records.push(r.build());
    // Order 1: corridor again, slower.
    let mut r = RecordBuilder::new();
    r.add(edges[0], 3.0)
        .add(edges[1], 4.0)
        .add(edges[2], 2.0)
        .add(edges[3], 2.0);
    records.push(r.build());
    // Order 2: leased routes.
    let mut r = RecordBuilder::new();
    r.add(edges[4], 1.0)
        .add(edges[5], 2.0)
        .add(edges[6], 3.0)
        .add(edges[7], 1.0)
        .add(edges[8], 2.5);
    records.push(r.build());
    GraphStore::load(u, &records)
}

/// Rebuilds the scm universe's edge ids by name (interning is
/// deterministic, so ids match the store's).
fn edges_by_names(pairs: &[(&str, &str)]) -> Vec<graphbi::EdgeId> {
    let mut u = Universe::new();
    for pair in [
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
        ("A", "B"),
        ("B", "F"),
        ("F", "J"),
        ("J", "K"),
        ("C", "H"),
        ("H", "K"),
    ] {
        u.edge_by_names(pair.0, pair.1);
    }
    pairs
        .iter()
        .map(|(s, t)| {
            u.find_edge(u.find_node(s).unwrap(), u.find_node(t).unwrap())
                .unwrap()
        })
        .collect()
}

#[test]
fn q1_path_query_matches_api() {
    let store = scm_store();
    let QlAnswer::Records(ql) = store.query("[A,D,E,G,I]").unwrap() else {
        panic!("expected records");
    };
    let api = GraphQuery::from_edges(edges_by_names(&[
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
    ]));
    let (expected, _) = store.evaluate(&api);
    assert_eq!(ql, expected);
    assert_eq!(ql.records, vec![0, 1]);
}

#[test]
fn q2_logical_or_and_not() {
    let store = scm_store();
    let QlAnswer::Records(either) = store.query("[C,H] OR [F,J,K]").unwrap() else {
        panic!("expected records");
    };
    assert_eq!(either.records, vec![2]);
    let QlAnswer::Records(corridor_not_leased) = store.query("[A,D] AND NOT [C,H]").unwrap() else {
        panic!("expected records");
    };
    assert_eq!(corridor_not_leased.records, vec![0, 1]);
}

#[test]
fn q3_max_aggregation() {
    let store = scm_store();
    let QlAnswer::Aggregates(agg) = store.query("MAX [A,D,E,G,I]").unwrap() else {
        panic!("expected aggregates");
    };
    assert_eq!(agg.records, vec![0, 1]);
    assert_eq!(agg.row(0), &[2.5]);
    assert_eq!(agg.row(1), &[4.0]);
}

#[test]
fn join_composition_equals_full_path() {
    let store = scm_store();
    let QlAnswer::Aggregates(joined) = store.query("SUM [A,D,E) JOIN [E,G,I]").unwrap() else {
        panic!("expected aggregates");
    };
    let QlAnswer::Aggregates(full) = store.query("SUM [A,D,E,G,I]").unwrap() else {
        panic!("expected aggregates");
    };
    assert_eq!(joined, full);
    assert_eq!(joined.row(0), &[7.0]); // 2.0+1.5+2.5+1.0
}

#[test]
fn all_aggregate_functions_via_ql() {
    let store = scm_store();
    for (text, expect) in [
        ("SUM [A,D,E]", 2.0 + 1.5),
        ("MIN [A,D,E]", 1.5),
        ("MAX [A,D,E]", 2.0),
        ("AVG [A,D,E]", 1.75),
        ("COUNT [A,D,E]", 2.0),
    ] {
        let QlAnswer::Aggregates(agg) = store.query(text).unwrap() else {
            panic!("expected aggregates for {text}");
        };
        assert_eq!(agg.row(0), &[expect], "{text}");
    }
}

#[test]
fn top_k_via_ql() {
    let store = scm_store();
    let QlAnswer::Ranked(top) = store.query("TOP 1 SUM [A,D,E,G,I]").unwrap() else {
        panic!("expected ranked answer");
    };
    // Order 1 is the slower corridor run: 3+4+2+2 = 11 vs order 0's 7.
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].record, 1);
    assert_eq!(top[0].value, 11.0);
    // k larger than the result set returns everything, descending.
    let QlAnswer::Ranked(all) = store.query("TOP 10 MAX [A,D]").unwrap() else {
        panic!("expected ranked answer");
    };
    assert_eq!(all.len(), 2);
    assert!(all[0].value >= all[1].value);
    // TOP without an aggregate is a parse error.
    assert!(store.query("TOP 3 [A,D]").is_err());
    assert!(store.query("TOP 0 SUM [A,D]").is_err());
}

#[test]
fn ql_errors_are_reported() {
    let store = scm_store();
    assert!(store.query("[A,").is_err());
    assert!(store.query("[A,Zebra]").is_err());
    assert!(store.query("[A,G]").is_err()); // no direct edge A→G
    assert!(store.query("SUM [A,D] OR [C,H]").is_err());
    assert!(store.query("[A,D] ? [C,H]").is_err());
}

#[test]
fn ql_uses_materialized_views_transparently() {
    let mut store = scm_store();
    let before = match store.query("[A,D,E,G,I]").unwrap() {
        QlAnswer::Records(r) => r,
        _ => unreachable!(),
    };
    // Materialize the exact query as a view.
    store.materialize_graph_view(edges_by_names(&[
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
    ]));
    let after = match store.query("[A,D,E,G,I]").unwrap() {
        QlAnswer::Records(r) => r,
        _ => unreachable!(),
    };
    assert_eq!(before, after);
}

#[test]
fn parallel_ql_equivalent_queries() {
    let store = scm_store();
    // Drive the same logical answers through both surfaces.
    let QlAnswer::Aggregates(ql) = store.query("SUM [F,J,K]").unwrap() else {
        panic!("expected aggregates");
    };
    let mut u = Universe::new();
    for pair in [
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
        ("A", "B"),
        ("B", "F"),
        ("F", "J"),
        ("J", "K"),
    ] {
        u.edge_by_names(pair.0, pair.1);
    }
    let q = GraphQuery::from_edge_names(&mut u, &[("F", "J"), ("J", "K")]);
    let (api, _) = store
        .path_aggregate(&PathAggQuery::new(q, AggFn::Sum))
        .unwrap();
    assert_eq!(ql, api);
}
