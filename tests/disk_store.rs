//! Disk-resident store: identical answers to the in-memory store, with
//! honest I/O accounting.

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, PathAggQuery};
use graphbi_graph::GraphQuery;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("graphbi-diskstore-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build(with_views: bool) -> (GraphStore, Vec<GraphQuery>) {
    let spec = DatasetSpec {
        n_records: 400,
        ..DatasetSpec::ny(400)
    };
    let d = Dataset::synthesize(&spec);
    let qs = d.queries(&QuerySpec::zipf(30));
    let mut store = GraphStore::load(d.universe, &d.records);
    if with_views {
        store.advise_views(&qs, 10);
        store.advise_agg_views(&qs, AggFn::Sum, 10).unwrap();
    }
    (store, qs)
}

#[test]
fn disk_answers_equal_memory_answers() {
    let dir = tmpdir("equal");
    let (mem, qs) = build(false);
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 16 << 20).unwrap();
    assert_eq!(disk.record_count(), mem.record_count());
    for q in &qs {
        let (m, _) = mem.evaluate(q);
        let (d, _) = disk.evaluate(q).unwrap();
        assert_eq!(d, m);
        let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
        let (ma, _) = mem.path_aggregate(&paq).unwrap();
        let (da, _) = disk.path_aggregate(&paq).unwrap();
        assert_eq!(da, ma);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_store_uses_materialized_views() {
    let dir = tmpdir("views");
    let (mem, qs) = build(true);
    assert!(!mem.graph_views().is_empty());
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 16 << 20).unwrap();

    let mut used_view = false;
    for q in &qs {
        let (m, _) = mem.evaluate(q);
        let (d, stats) = disk.evaluate(q).unwrap();
        assert_eq!(d, m);
        used_view |= stats.view_bitmap_columns > 0;
        // Aggregate answers too.
        let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
        let (ma, _) = mem.path_aggregate(&paq).unwrap();
        let (da, _) = disk.path_aggregate(&paq).unwrap();
        assert_eq!(da.records, ma.records);
        for (a, b) in da.values.iter().zip(&ma.values) {
            assert!((a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()));
        }
    }
    assert!(used_view, "rewrites must reach the stored views");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_cache_reads_warm_cache_hits() {
    let dir = tmpdir("cache");
    let (mem, qs) = build(false);
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 64 << 20).unwrap();

    let q = &qs[0];
    let (_, cold) = disk.evaluate(q).unwrap();
    assert!(cold.disk_reads > 0, "cold run must hit the disk");
    let (_, warm) = disk.evaluate(q).unwrap();
    assert_eq!(warm.disk_reads, 0, "warm run is fully cached");
    assert_eq!(
        warm.bitmap_columns, cold.bitmap_columns,
        "model cost unchanged"
    );

    disk.relation().clear_cache();
    let (_, cold2) = disk.evaluate(q).unwrap();
    assert_eq!(
        cold2.disk_reads, cold.disk_reads,
        "cold runs are repeatable"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiny_cache_answers_stay_correct() {
    let dir = tmpdir("tiny");
    let (mem, qs) = build(false);
    save_store(&mem, &dir).unwrap();
    // 1 KiB: too small for most columns, but sub-KiB columns of a hot
    // (Zipf-repeated) query can survive into its next run — so cold-start
    // each query before asserting that all of its columns come from disk.
    let disk = DiskGraphStore::open(&dir, 1024).unwrap();
    for q in qs.iter().take(5) {
        disk.relation().clear_cache();
        let (m, _) = mem.evaluate(q);
        let (d, stats) = disk.evaluate(q).unwrap();
        assert_eq!(d, m);
        if !q.is_empty() {
            assert!(stats.disk_reads >= q.len() as u64, "every column from disk");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn load_store_reattaches_views() {
    let dir = tmpdir("reattach");
    let (mem, qs) = build(true);
    save_store(&mem, &dir).unwrap();
    let reloaded = graphbi::disk::load_store(&dir).unwrap();
    assert_eq!(reloaded.graph_views().len(), mem.graph_views().len());
    assert_eq!(reloaded.agg_views().len(), mem.agg_views().len());
    let mut used_view = false;
    for q in &qs {
        let (a, s1) = mem.evaluate(q);
        let (b, s2) = reloaded.evaluate(q);
        assert_eq!(a, b);
        assert_eq!(s1.structural_columns(), s2.structural_columns());
        used_view |= s2.view_bitmap_columns > 0;
    }
    assert!(used_view);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_disk_reads_equal_cost_model() {
    // Under a cold cache, disk reads == structural + measure columns: the
    // paper's cost model made literal.
    let dir = tmpdir("model");
    let (mem, qs) = build(false);
    save_store(&mem, &dir).unwrap();
    let disk = DiskGraphStore::open(&dir, 512 << 20).unwrap();
    for q in qs.iter().take(10) {
        disk.relation().clear_cache();
        let (result, stats) = disk.evaluate(q).unwrap();
        let expected_measure_reads = if result.is_empty() { 0 } else { q.len() as u64 };
        assert_eq!(
            stats.disk_reads,
            stats.structural_columns() + expected_measure_reads,
            "{q:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
