//! Multi-measure storage end-to-end (§3.1): time and cost planes over the
//! same structural universe, queried and aggregated independently.

use graphbi::{AggFn, GraphStore, PathAggQuery};
use graphbi_graph::{EdgeId, GraphQuery, MeasurePlanes, Universe};

/// Two delivery orders with (time, cost) on each leg.
fn setup() -> (GraphStore, MeasurePlanes, Vec<EdgeId>) {
    let mut u = Universe::new();
    let ad = u.edge_by_names("A", "D");
    let de = u.edge_by_names("D", "E");
    let eg = u.edge_by_names("E", "G");
    // Mirror the topology into a second (cost) plane of columns.
    let planes = MeasurePlanes::build(&mut u, &["time", "cost"]);
    let records = vec![
        planes.record(&[
            (ad, vec![2.0, 10.0]),
            (de, vec![1.5, 7.0]),
            (eg, vec![2.5, 12.0]),
        ]),
        planes.record(&[(ad, vec![3.0, 9.0]), (de, vec![4.0, 8.0])]),
    ];
    (GraphStore::load(u, &records), planes, vec![ad, de, eg])
}

#[test]
fn planes_query_independently() {
    let (store, planes, e) = setup();
    let logical = GraphQuery::from_edges(vec![e[0], e[1]]);
    let time_q = planes.map_query(&logical, 0);
    let cost_q = planes.map_query(&logical, 1);

    let (time, _) = store.evaluate(&time_q);
    let (cost, _) = store.evaluate(&cost_q);
    // Same structural matches on both planes.
    assert_eq!(time.records, cost.records);
    assert_eq!(time.records, vec![0, 1]);
    // Different measures.
    assert_eq!(time.row(0), &[2.0, 1.5]);
    assert_eq!(cost.row(0), &[10.0, 7.0]);
    assert_eq!(time.row(1), &[3.0, 4.0]);
    assert_eq!(cost.row(1), &[9.0, 8.0]);
}

#[test]
fn aggregation_per_plane() {
    let (store, planes, e) = setup();
    let logical = GraphQuery::from_edges(vec![e[0], e[1]]);
    for (plane, expect0, expect1) in [(0usize, 3.5, 7.0), (1, 17.0, 17.0)] {
        let q = planes.map_query(&logical, plane);
        let (agg, _) = store
            .path_aggregate(&PathAggQuery::new(q, AggFn::Sum))
            .unwrap();
        // Plane blocks are disjoint edge ranges, so each plane's query is
        // its own path graph; SUM along it is the per-plane total.
        assert_eq!(agg.records, vec![0, 1]);
        assert_eq!(agg.row(0), &[expect0]);
        assert_eq!(agg.row(1), &[expect1]);
    }
}

#[test]
fn views_work_per_plane() {
    let (mut store, planes, e) = setup();
    let logical = GraphQuery::from_edges(vec![e[0], e[1]]);
    let cost_q = planes.map_query(&logical, 1);
    let (before, _) = store.evaluate(&cost_q);
    store.materialize_graph_view(cost_q.edges().to_vec());
    let (after, stats) = store.evaluate(&cost_q);
    assert_eq!(before, after);
    assert_eq!(stats.view_bitmap_columns, 1);
}
